"""``python -m repro cluster`` — run a sharded multi-worker cluster.

Modes (all share the worker flags; topology details in ``docs/cluster.md``):

* ``--tcp HOST:PORT`` / ``--stdio`` — serve the public protocol from a
  coordinator backed by ``--workers N`` spawned local worker processes
  and/or ``--connect HOST:PORT`` pre-started workers.
* ``--run EXPERIMENT|all`` — one-shot batch: start the cluster, execute the
  request, print the result summary and the merged cluster ``RunStats``,
  verify each simulation ran exactly once cluster-wide (merged
  ``sweep.configs_simulated`` equals the planned unit count), and exit.
* ``--selftest`` — spawn 2 local workers, shard a multi-network experiment
  across them, kill one worker mid-run and assert the coordinator requeues
  its jobs onto the survivor; then exercise warm-cache exactness and a
  cross-process streamed cancellation.  CI runs this on every tier-1
  platform.

``--cache-dir`` names the shared cache every worker mounts; omitting it
gives the cluster a private temporary directory (useful for selftests and
benchmarks, wrong for durable deployments).  Worker registration is always
token-protected: ``--worker-token`` (or ``REPRO_SERVE_TOKEN``) supplies the
secret, which spawned workers inherit through their environment; a separate
``--auth-token`` protects the client-facing endpoint.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys

from repro.serve.cli import _parse_endpoint

__all__ = ["main"]

#: Small two-network workload for the selftest (sharding needs >1 trace).
_SELFTEST_OVERRIDES = {
    "networks": ["alexnet", "vgg_m"],
    "max_pallets": 2,
    "samples_per_layer": 1500,
}


def _fail(message: str) -> int:
    print(f"cluster: {message}", file=sys.stderr)
    return 1


async def _run_batch(args) -> int:
    """Start a cluster, run one request through it, verify, and exit."""
    from repro.cluster.coordinator import ClusterService
    from repro.serve.protocol import ExperimentRequest, RunAllRequest

    service = ClusterService(
        spawn_workers=args.workers,
        connect=args.connect,
        cache_dir=args.cache_dir,
        worker_processes=args.worker_processes,
        worker_token=args.worker_token,
        trace_dir=args.trace_dir,
        no_trace_cache=args.no_trace_cache,
    )
    if args.run == "all":
        request = RunAllRequest(preset=args.preset, seed=args.seed)
    else:
        request = ExperimentRequest(
            experiment=args.run, preset=args.preset, seed=args.seed
        )
    async with service:
        ticket = await service.submit(request)
        response = await service.wait(ticket)
        fleet = (await service.cluster_stats())["cluster"]["fleet"]
    if response["event"] != "done":
        return _fail(f"batch request failed: {response.get('error')}")
    stats = response["stats"]
    info = response["result"].get("cluster", {})
    simulated = stats["sweep"]["configs_simulated"]
    planned = info.get("planned_units", 0)
    requeued = service.flights_requeued
    print(
        f"cluster run {request.describe()}: planned {planned} unit(s), "
        f"planned cache hits {info.get('planned_hits', 0)}, "
        f"simulated {simulated} configs across "
        f"{len(service.links)} worker(s), {requeued} requeue(s)"
    )
    print(
        "stats: "
        f"cache {stats['cache']['hits']} hits / {stats['cache']['misses']} misses / "
        f"{stats['cache']['stores']} stores; "
        f"simulated {simulated} configs; "
        f"traces {stats['traces_built']} built / {stats['traces_reused']} reused"
    )
    print(
        f"fleet fabric: {fleet['trace_calibrations_computed']} calibrations, "
        f"{fleet['trace_tensors_built']} tensor builds, "
        f"{fleet['traces_mapped']} mmaps "
        f"({fleet['trace_bytes_shared']} bytes shared)"
    )
    if requeued == 0 and simulated != planned:
        return _fail(
            f"exactly-once violated: planned {planned} units but "
            f"simulated {simulated} configs"
        )
    return 0


async def _selftest_sharded_run(service, client) -> int:
    """Cold sharded experiment: every planned unit simulated exactly once."""
    response = await client.run_experiment("fig9", overrides=_SELFTEST_OVERRIDES)
    if not response.ok or not response.result:
        print(f"selftest: sharded run failed: {response.error}", file=sys.stderr)
        return 1
    planned = response.result.get("cluster", {}).get("planned_units", 0)
    simulated = response.stats.sweep.configs_simulated
    if planned == 0 or simulated != planned:
        print(
            f"selftest: expected exactly-once execution of {planned} planned "
            f"unit(s), merged stats report {simulated} simulated configs",
            file=sys.stderr,
        )
        return 1
    shards = {link.worker_id: link.completed for link in service.links.values()}
    workers_used = sum(1 for count in shards.values() if count > 0)
    print(
        f"selftest ok: fig9 sharded over {workers_used}/{len(shards)} workers "
        f"({planned} units, each simulated once; completions {shards})"
    )
    return 0


async def _selftest_warm_rerun(client) -> int:
    """A warm rerun recomputes nothing anywhere in the cluster."""
    response = await client.run_experiment("fig9", overrides=_SELFTEST_OVERRIDES)
    if not response.ok:
        print(f"selftest: warm rerun failed: {response.error}", file=sys.stderr)
        return 1
    simulated = response.stats.sweep.configs_simulated
    if simulated != 0:
        print(
            f"selftest: warm rerun simulated {simulated} configs (expected 0)",
            file=sys.stderr,
        )
        return 1
    print("selftest ok: warm rerun reported simulated 0 configs cluster-wide")
    return 0


async def _selftest_trace_fabric(service, client) -> int:
    """Across 2 workers, every trace artifact was materialized exactly once.

    The zero-copy trace fabric keys artifacts by content, and rendezvous
    routing sends each network's jobs to one worker — so summed over the
    fleet, calibrations computed (and tensors built) must equal the artifact
    count on disk: nothing was recomputed by the sibling worker, which
    loaded/mapped instead.  Runs after the cold + warm checks and before the
    worker-kill check (a killed worker's counters are unqueryable).
    """
    from repro.runtime import TraceArtifactStore

    payload = await service.cluster_stats()
    fleet = payload["cluster"]["fleet"]
    trace_dir = payload["cluster"]["trace_dir"]
    usage = TraceArtifactStore(trace_dir).usage()
    computed = fleet["trace_calibrations_computed"]
    built = fleet["trace_tensors_built"]
    if usage["calibrations"] == 0:
        print("selftest: no calibration artifacts materialized", file=sys.stderr)
        return 1
    if computed != usage["calibrations"] or built != usage["tensors"]:
        print(
            f"selftest: trace fabric built-once violated: fleet computed "
            f"{computed} calibrations / built {built} tensors for "
            f"{usage['calibrations']} calibration / {usage['tensors']} tensor "
            f"artifact(s) on disk",
            file=sys.stderr,
        )
        return 1
    print(
        f"selftest ok: {usage['calibrations'] + usage['tensors']} trace "
        f"artifact(s) each materialized exactly once across "
        f"{len(service.links)} workers "
        f"(fleet: {computed} calibrations computed, "
        f"{fleet['trace_calibrations_loaded']} loaded)"
    )
    return 0


async def _selftest_worker_kill(service, client) -> int:
    """Killing a worker mid-run requeues its jobs onto the survivor."""
    # Fresh trace spec (different seed) so this run is cold again.
    killed = []
    terminal = None
    terminal_event: dict = {}
    message = {
        "op": "run_experiment",
        "experiment": "fig10",
        "seed": 1,
        "overrides": _SELFTEST_OVERRIDES,
    }
    async for event in client.stream(message):
        name = event.get("event")
        if name == "progress" and not killed:
            worker_id = event.get("progress", {}).get("worker")
            link = service.links.get(worker_id)
            if link is not None and link.process is not None:
                killed.append(worker_id)
                link.process.terminate()
        if name in ("done", "failed", "cancelled", "error"):
            terminal = name
            terminal_event = event
    if not killed:
        print("selftest: no worker progress observed to kill on", file=sys.stderr)
        return 1
    if terminal != "done":
        print(
            f"selftest: run ended {terminal!r} after killing {killed[0]} "
            f"({terminal_event.get('error')})",
            file=sys.stderr,
        )
        return 1
    if service.flights_requeued < 1:
        print(
            "selftest: worker killed mid-flight but nothing was requeued",
            file=sys.stderr,
        )
        return 1
    dead = [link.worker_id for link in service.links.values() if not link.alive]
    print(
        f"selftest ok: killed {killed[0]} mid-run; {service.flights_requeued} "
        f"flight(s) requeued onto survivors (dead: {dead}), run completed"
    )
    return 0


async def _selftest_cancellation(service, client) -> int:
    """A client cancel mid-run must interrupt the owning worker process."""
    cancelled = False
    terminal = None
    message = {
        "op": "run_experiment",
        "experiment": "fig12",
        "seed": 2,
        "overrides": _SELFTEST_OVERRIDES,
    }
    async for event in client.stream(message):
        name = event.get("event")
        if name == "progress" and not cancelled:
            cancelled = True
            await client.cancel(event["ticket"])
        if name in ("done", "failed", "cancelled", "error"):
            terminal = name
    if not cancelled:
        print("selftest: no progress to cancel on", file=sys.stderr)
        return 1
    if terminal != "cancelled":
        print(
            f"selftest: expected terminal cancelled, got {terminal!r}", file=sys.stderr
        )
        return 1
    follow_up = await asyncio.wait_for(
        client.run_experiment("table3", preset="smoke"), timeout=60
    )
    if not follow_up.ok:
        print(f"selftest: post-cancel request failed: {follow_up.error}", file=sys.stderr)
        return 1
    print(
        "selftest ok: cross-process cancellation interrupted the worker "
        "(terminal cancelled, survivors still serving)"
    )
    return 0


async def _selftest(args) -> int:
    """Spawn 2 workers, shard, kill one mid-run, cancel cross-process."""
    from repro.cluster.coordinator import ClusterService
    from repro.serve.client import ServeClient

    workers = max(args.workers, 2)
    service = ClusterService(
        spawn_workers=workers,
        cache_dir=args.cache_dir,
        worker_processes=args.worker_processes,
        worker_token=args.worker_token,
        trace_dir=args.trace_dir,
        no_trace_cache=args.no_trace_cache,
    )
    async with service:
        server = await service.serve_tcp("127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        async with server:
            client = await ServeClient.connect("127.0.0.1", port)
            try:
                pids = [link.pid for link in service.links.values()]
                print(f"selftest: {workers} workers up (pids {pids})")
                for check in (
                    lambda: _selftest_sharded_run(service, client),
                    lambda: _selftest_warm_rerun(client),
                    lambda: _selftest_trace_fabric(service, client),
                    lambda: _selftest_worker_kill(service, client),
                    lambda: _selftest_cancellation(service, client),
                ):
                    status = await check()
                    if status:
                        return status
                return 0
            finally:
                await client.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cluster",
        description="Shard experiment execution across worker processes "
        "behind the standard serve protocol.",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--tcp",
        type=_parse_endpoint,
        metavar="HOST:PORT",
        help="serve the public protocol on HOST:PORT (port 0 = ephemeral)",
    )
    mode.add_argument(
        "--stdio",
        action="store_true",
        help="serve the public protocol over stdin/stdout",
    )
    mode.add_argument(
        "--run",
        metavar="EXPERIMENT|all",
        help="one-shot batch: run one experiment (or 'all'), verify "
        "exactly-once execution, print merged stats, exit",
    )
    mode.add_argument(
        "--selftest",
        action="store_true",
        help="spawn 2 workers, shard a run, kill one worker mid-run, "
        "assert requeue + completion + cross-process cancellation",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="local worker processes to spawn (default: 2; 0 with --connect)",
    )
    parser.add_argument(
        "--connect",
        type=_parse_endpoint,
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="attach a pre-started worker (repeatable); workers must share "
        "a cache backend",
    )
    parser.add_argument(
        "--worker-processes",
        type=int,
        default=2,
        metavar="K",
        help="concurrent jobs per spawned worker (default: 2)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="shared result cache all workers mount (default: a private "
        "temporary directory, removed on exit)",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="trace-fabric artifact directory every worker shares "
        "(default: <cache-dir>/traces)",
    )
    parser.add_argument(
        "--no-trace-cache",
        action="store_true",
        help="disable the zero-copy trace fabric on every worker",
    )
    parser.add_argument(
        "--worker-token",
        default=None,
        metavar="TOKEN",
        help="shared secret for worker registration (default: "
        "$REPRO_SERVE_TOKEN, or generated per run)",
    )
    parser.add_argument(
        "--auth-token",
        default=None,
        metavar="TOKEN",
        help="require clients of the coordinator's endpoint to authenticate",
    )
    parser.add_argument("--preset", default="fast", help="preset for --run (default: fast)")
    parser.add_argument("--seed", type=int, default=0, help="seed for --run (default: 0)")
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error("--workers must be non-negative")
    if args.workers == 0 and not args.connect:
        parser.error("a cluster needs --workers >= 1 and/or --connect endpoints")
    if args.worker_token is None:
        args.worker_token = os.environ.get("REPRO_SERVE_TOKEN") or None

    try:
        if args.selftest:
            return asyncio.run(_selftest(args))
        if args.run:
            from repro.experiments.runner import EXPERIMENTS

            if args.run != "all" and args.run not in EXPERIMENTS:
                parser.error(
                    f"unknown experiment {args.run!r}; "
                    f"available: all, {', '.join(EXPERIMENTS)}"
                )
            return asyncio.run(_run_batch(args))
        if args.tcp is None and not args.stdio:
            parser.error("pick a mode: --tcp, --stdio, --run or --selftest")

        from repro.cluster.coordinator import ClusterService

        service = ClusterService(
            spawn_workers=args.workers,
            connect=args.connect,
            cache_dir=args.cache_dir,
            worker_processes=args.worker_processes,
            worker_token=args.worker_token,
            auth_token=args.auth_token,
            trace_dir=args.trace_dir,
            no_trace_cache=args.no_trace_cache,
        )

        async def run_tcp(host: str, port: int) -> None:
            async with service:
                server = await service.serve_tcp(host, port)
                bound = server.sockets[0].getsockname()
                print(
                    f"repro cluster: coordinator on {bound[0]}:{bound[1]} "
                    f"({len(service.links)} workers)",
                    file=sys.stderr,
                )
                async with server:
                    await service.wait_shutdown()

        if args.tcp:
            asyncio.run(run_tcp(*args.tcp))
        else:
            asyncio.run(service.run_stdio())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
