"""Unit tests for the oneffset (essential bit) encoding."""

import numpy as np
import pytest

from repro.numerics.oneffsets import (
    OneffsetStream,
    decode_oneffsets,
    encode_array,
    encode_oneffsets,
    essential_bit_counts,
    essential_bit_fraction,
)


class TestEncodeDecode:
    def test_paper_example_value_101b(self):
        # The paper represents n = 101(2) as oneffsets (2, 0).
        assert encode_oneffsets(0b101, ascending=False) == (2, 0)
        assert encode_oneffsets(0b101, ascending=True) == (0, 2)

    def test_zero_has_no_oneffsets(self):
        assert encode_oneffsets(0) == ()

    def test_all_ones(self):
        assert encode_oneffsets(0b111, ascending=True) == (0, 1, 2)

    def test_negative_value_uses_magnitude(self):
        assert encode_oneffsets(-6) == encode_oneffsets(6)

    def test_decode_inverts_encode(self):
        for value in [0, 1, 2, 5, 0b101101, 65535]:
            assert decode_oneffsets(encode_oneffsets(value)) == value

    def test_decode_rejects_duplicates(self):
        with pytest.raises(ValueError):
            decode_oneffsets([1, 1])

    def test_decode_rejects_negative_positions(self):
        with pytest.raises(ValueError):
            decode_oneffsets([-1])

    def test_encode_array_flattens(self):
        encoded = encode_array(np.array([[1, 2], [3, 0]]), bits=8)
        assert encoded == [(0,), (1,), (0, 1), ()]

    def test_encode_array_rejects_wide_values(self):
        with pytest.raises(ValueError):
            encode_array(np.array([300]), bits=8)


class TestEssentialBitStatistics:
    def test_counts_match_popcount_semantics(self):
        np.testing.assert_array_equal(
            essential_bit_counts(np.array([0, 1, 3, 7, 255]), bits=8), [0, 1, 2, 3, 8]
        )

    def test_fraction_all_neurons(self):
        values = np.array([0, 0, 0b1111, 0b1111])
        assert essential_bit_fraction(values, bits=8) == pytest.approx(0.25)

    def test_fraction_nonzero_only(self):
        values = np.array([0, 0, 0b1111, 0b1111])
        assert essential_bit_fraction(values, bits=8, nonzero_only=True) == pytest.approx(0.5)

    def test_fraction_all_zero_stream(self):
        assert essential_bit_fraction(np.zeros(4, dtype=int), nonzero_only=True) == 0.0

    def test_fraction_rejects_empty(self):
        with pytest.raises(ValueError):
            essential_bit_fraction(np.array([]))


class TestOneffsetStream:
    def test_stream_for_paper_example(self):
        stream = OneffsetStream.from_value(0b101, bits=16)
        assert stream.entries == ((0, False), (2, True))
        assert stream.cycles == 2

    def test_zero_value_is_single_null_entry(self):
        stream = OneffsetStream.from_value(0, bits=16)
        assert len(stream) == 1
        assert stream.entries[0][1] is True
        assert stream.cycles == 1

    def test_worst_case_sixteen_oneffsets(self):
        stream = OneffsetStream.from_value(0xFFFF, bits=16)
        assert len(stream) == 16
        assert stream.cycles == 16

    def test_value_reconstruction(self):
        for value in [1, 2, 5, 1234, 65535]:
            assert OneffsetStream.from_value(value, bits=16).value == value

    def test_rejects_values_wider_than_storage(self):
        with pytest.raises(ValueError):
            OneffsetStream.from_value(256, bits=8)

    def test_end_of_neuron_marker_only_on_last_entry(self):
        stream = OneffsetStream.from_value(0b1011, bits=16)
        markers = [eon for _, eon in stream]
        assert markers == [False, False, True]
