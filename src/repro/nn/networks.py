"""Convolutional layer inventories of the six networks evaluated in the paper.

The paper evaluates AlexNet, NiN (Network in Network), GoogLeNet, VGG-M, VGG-S
and VGG-19 — convolutional layers only, which account for more than 92% of
execution time on DaDianNao.  The inventories below follow the standard Caffe
model definitions; GoogLeNet's inception modules are each folded into one
equivalent convolutional layer so that the layer count matches the eleven
per-layer precision entries the paper reports in Table II (the folding preserves
the module's input/output channel counts and spatial dimensions, which is what
the term-count and cycle models consume).

Layer counts match Table II exactly: AlexNet 5, NiN 12, GoogLeNet 11, VGG-M 5,
VGG-S 5, VGG-19 16.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.layers import ConvLayerSpec

__all__ = ["Network", "NETWORK_NAMES", "get_network", "list_networks", "all_networks"]


@dataclass(frozen=True)
class Network:
    """A named collection of convolutional layers."""

    name: str
    display_name: str
    layers: tuple[ConvLayerSpec, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError(f"network {self.name!r} has no layers")
        seen = set()
        for layer in self.layers:
            if layer.name in seen:
                raise ValueError(f"duplicate layer name {layer.name!r} in {self.name!r}")
            seen.add(layer.name)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def total_macs(self) -> int:
        """MACs summed over all convolutional layers."""
        return sum(layer.macs for layer in self.layers)

    def layer(self, name: str) -> ConvLayerSpec:
        """Look a layer up by name."""
        for candidate in self.layers:
            if candidate.name == name:
                return candidate
        raise KeyError(f"network {self.name!r} has no layer named {name!r}")

    def describe(self) -> str:
        lines = [f"{self.display_name} ({self.num_layers} conv layers, "
                 f"{self.total_macs / 1e9:.2f} GMACs)"]
        lines.extend("  " + layer.describe() for layer in self.layers)
        return "\n".join(lines)


def _conv(name, in_c, in_h, in_w, filters, fh, fw, stride=1, padding=0) -> ConvLayerSpec:
    return ConvLayerSpec(
        name=name,
        input_channels=in_c,
        input_height=in_h,
        input_width=in_w,
        num_filters=filters,
        filter_height=fh,
        filter_width=fw,
        stride=stride,
        padding=padding,
    )


_ALEXNET = Network(
    name="alexnet",
    display_name="AlexNet",
    layers=(
        _conv("conv1", 3, 227, 227, 96, 11, 11, stride=4),
        _conv("conv2", 96, 27, 27, 256, 5, 5, padding=2),
        _conv("conv3", 256, 13, 13, 384, 3, 3, padding=1),
        _conv("conv4", 384, 13, 13, 384, 3, 3, padding=1),
        _conv("conv5", 384, 13, 13, 256, 3, 3, padding=1),
    ),
)

_NIN = Network(
    name="nin",
    display_name="NiN",
    layers=(
        _conv("conv1", 3, 224, 224, 96, 11, 11, stride=4),
        _conv("cccp1", 96, 54, 54, 96, 1, 1),
        _conv("cccp2", 96, 54, 54, 96, 1, 1),
        _conv("conv2", 96, 27, 27, 256, 5, 5, padding=2),
        _conv("cccp3", 256, 27, 27, 256, 1, 1),
        _conv("cccp4", 256, 27, 27, 256, 1, 1),
        _conv("conv3", 256, 13, 13, 384, 3, 3, padding=1),
        _conv("cccp5", 384, 13, 13, 384, 1, 1),
        _conv("cccp6", 384, 13, 13, 384, 1, 1),
        _conv("conv4-1024", 384, 6, 6, 1024, 3, 3, padding=1),
        _conv("cccp7", 1024, 6, 6, 1024, 1, 1),
        _conv("cccp8", 1024, 6, 6, 1000, 1, 1),
    ),
)

# GoogLeNet: each inception module folded into one equivalent 3x3 convolution with
# the module's aggregate input/output channel counts at the module's spatial size.
_GOOGLENET = Network(
    name="googlenet",
    display_name="GoogLeNet",
    layers=(
        _conv("conv1", 3, 224, 224, 64, 7, 7, stride=2, padding=3),
        _conv("conv2", 64, 56, 56, 192, 3, 3, padding=1),
        _conv("inception3a", 192, 28, 28, 256, 3, 3, padding=1),
        _conv("inception3b", 256, 28, 28, 480, 3, 3, padding=1),
        _conv("inception4a", 480, 14, 14, 512, 3, 3, padding=1),
        _conv("inception4b", 512, 14, 14, 512, 3, 3, padding=1),
        _conv("inception4c", 512, 14, 14, 512, 3, 3, padding=1),
        _conv("inception4d", 512, 14, 14, 528, 3, 3, padding=1),
        _conv("inception4e", 528, 14, 14, 832, 3, 3, padding=1),
        _conv("inception5a", 832, 7, 7, 832, 3, 3, padding=1),
        _conv("inception5b", 832, 7, 7, 1024, 3, 3, padding=1),
    ),
)

_VGG_M = Network(
    name="vgg_m",
    display_name="VGG M",
    layers=(
        _conv("conv1", 3, 224, 224, 96, 7, 7, stride=2),
        _conv("conv2", 96, 54, 54, 256, 5, 5, stride=2, padding=1),
        _conv("conv3", 256, 13, 13, 512, 3, 3, padding=1),
        _conv("conv4", 512, 13, 13, 512, 3, 3, padding=1),
        _conv("conv5", 512, 13, 13, 512, 3, 3, padding=1),
    ),
)

_VGG_S = Network(
    name="vgg_s",
    display_name="VGG S",
    layers=(
        _conv("conv1", 3, 224, 224, 96, 7, 7, stride=2),
        _conv("conv2", 96, 36, 36, 256, 5, 5, padding=1),
        _conv("conv3", 256, 17, 17, 512, 3, 3, padding=1),
        _conv("conv4", 512, 17, 17, 512, 3, 3, padding=1),
        _conv("conv5", 512, 17, 17, 512, 3, 3, padding=1),
    ),
)

_VGG_19 = Network(
    name="vgg19",
    display_name="VGG 19",
    layers=(
        _conv("conv1_1", 3, 224, 224, 64, 3, 3, padding=1),
        _conv("conv1_2", 64, 224, 224, 64, 3, 3, padding=1),
        _conv("conv2_1", 64, 112, 112, 128, 3, 3, padding=1),
        _conv("conv2_2", 128, 112, 112, 128, 3, 3, padding=1),
        _conv("conv3_1", 128, 56, 56, 256, 3, 3, padding=1),
        _conv("conv3_2", 256, 56, 56, 256, 3, 3, padding=1),
        _conv("conv3_3", 256, 56, 56, 256, 3, 3, padding=1),
        _conv("conv3_4", 256, 56, 56, 256, 3, 3, padding=1),
        _conv("conv4_1", 256, 28, 28, 512, 3, 3, padding=1),
        _conv("conv4_2", 512, 28, 28, 512, 3, 3, padding=1),
        _conv("conv4_3", 512, 28, 28, 512, 3, 3, padding=1),
        _conv("conv4_4", 512, 28, 28, 512, 3, 3, padding=1),
        _conv("conv5_1", 512, 14, 14, 512, 3, 3, padding=1),
        _conv("conv5_2", 512, 14, 14, 512, 3, 3, padding=1),
        _conv("conv5_3", 512, 14, 14, 512, 3, 3, padding=1),
        _conv("conv5_4", 512, 14, 14, 512, 3, 3, padding=1),
    ),
)

_REGISTRY: dict[str, Network] = {
    net.name: net for net in (_ALEXNET, _NIN, _GOOGLENET, _VGG_M, _VGG_S, _VGG_19)
}

#: Canonical network names in the order the paper's figures use.
NETWORK_NAMES: tuple[str, ...] = ("alexnet", "nin", "googlenet", "vgg_m", "vgg_s", "vgg19")


def get_network(name: str) -> Network:
    """Return the named network's convolutional layer inventory."""
    key = name.lower().replace("-", "_").replace(" ", "_")
    aliases = {
        "google": "googlenet",
        "vggm": "vgg_m",
        "vggs": "vgg_s",
        "vgg_19": "vgg19",
    }
    key = aliases.get(key, key)
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown network {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[key]


def list_networks() -> tuple[str, ...]:
    """Names of all available networks."""
    return NETWORK_NAMES


def all_networks() -> tuple[Network, ...]:
    """All network inventories in canonical order."""
    return tuple(_REGISTRY[name] for name in NETWORK_NAMES)
