"""Figure 3 — convolutional layer computational demands, 8-bit quantized."""

from __future__ import annotations

from repro.analysis.potential import FIG3_ENGINES
from repro.analysis.speedup import geometric_mean
from repro.analysis.tables import format_percent
from repro.experiments.base import ExperimentResult, Preset, get_preset
from repro.runtime import StatisticsRequest, TraceSpec, analyze

__all__ = ["run", "plan", "PAPER_AVERAGES"]

#: Average relative term counts the paper reports for the quantized study:
#: skipping zero neurons removes ~30% of terms, Pragmatic up to ~71%.
PAPER_AVERAGES: dict[str, float] = {"ZN": 0.70, "PRA": 0.29}


def plan(preset: str | Preset = "fast", seed: int = 0) -> list[StatisticsRequest]:
    """The per-network statistics passes this experiment needs."""
    config = get_preset(preset)
    return [
        StatisticsRequest(
            statistic="fig3_terms",
            trace=TraceSpec(network=name, representation="quant8", seed=seed),
            samples_per_layer=config.samples_per_layer,
        )
        for name in config.networks
    ]


def run(preset: str | Preset = "fast", seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 3: relative term counts with the 8-bit quantized baseline."""
    config = get_preset(preset)
    entries = [analyze(request) for request in plan(config, seed)]
    headers = ["network", *FIG3_ENGINES]
    rows: list[list[object]] = []
    metadata: dict[str, float] = {}
    for entry in entries:
        network = entry["network"]
        terms = entry["relative_terms"]
        rows.append(
            [network] + [format_percent(terms[engine]) for engine in FIG3_ENGINES]
        )
        for engine in FIG3_ENGINES:
            metadata[f"{network}:{engine}"] = terms[engine]
    averages = {
        engine: geometric_mean(entry["relative_terms"][engine] for entry in entries)
        for engine in FIG3_ENGINES
    }
    rows.append(["geomean", *[format_percent(averages[engine]) for engine in FIG3_ENGINES]])
    for engine, value in averages.items():
        metadata[f"geomean:{engine}"] = value
    notes = "Paper averages (Section II-B): " + ", ".join(
        f"{engine} {format_percent(value)}" for engine, value in PAPER_AVERAGES.items()
    )
    return ExperimentResult(
        experiment="fig3",
        title="Figure 3: relative term counts, 8-bit quantized representation (lower is better)",
        headers=headers,
        rows=rows,
        notes=notes,
        metadata=metadata,
    )
