"""Unit tests for repro.numerics.quantized (TensorFlow-style 8-bit quantization)."""

import numpy as np
import pytest

from repro.numerics.quantized import QuantizationParams, quantize_layer


class TestQuantizationParams:
    def test_levels_and_scale(self):
        params = QuantizationParams(min_val=0.0, max_val=255.0, bits=8)
        assert params.levels == 256
        assert params.scale == pytest.approx(1.0)

    def test_asymmetric_range_allowed(self):
        params = QuantizationParams(min_val=-3.0, max_val=13.0)
        assert params.scale == pytest.approx(16.0 / 255.0)

    def test_zero_point_maps_near_zero(self):
        params = QuantizationParams(min_val=-1.0, max_val=3.0)
        zero_code = params.zero_point
        assert abs(params.dequantize(np.array([zero_code]))[0]) <= params.scale

    def test_zero_point_clipped_to_code_range(self):
        params = QuantizationParams(min_val=1.0, max_val=2.0)
        assert 0 <= params.zero_point <= 255

    def test_quantize_endpoints(self):
        params = QuantizationParams(min_val=-2.0, max_val=2.0)
        codes = params.quantize(np.array([-2.0, 2.0]))
        np.testing.assert_array_equal(codes, [0, 255])

    def test_quantize_clips_outside_range(self):
        params = QuantizationParams(min_val=0.0, max_val=1.0)
        codes = params.quantize(np.array([-5.0, 5.0]))
        np.testing.assert_array_equal(codes, [0, 255])

    def test_roundtrip_error_bounded_by_half_step(self, rng):
        params = QuantizationParams(min_val=-4.0, max_val=10.0)
        values = rng.uniform(-4.0, 10.0, size=500)
        recovered = params.dequantize(params.quantize(values))
        assert np.max(np.abs(recovered - values)) <= params.scale / 2 + 1e-9

    def test_from_values_uses_observed_extrema(self):
        values = np.array([-1.5, 0.0, 4.0])
        params = QuantizationParams.from_values(values)
        assert params.min_val == -1.5
        assert params.max_val == 4.0

    def test_from_values_handles_constant_input(self):
        params = QuantizationParams.from_values(np.zeros(10))
        assert params.max_val > params.min_val

    def test_from_values_rejects_empty(self):
        with pytest.raises(ValueError):
            QuantizationParams.from_values(np.array([]))

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            QuantizationParams(min_val=1.0, max_val=1.0)
        with pytest.raises(ValueError):
            QuantizationParams(min_val=0.0, max_val=float("inf"))

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            QuantizationParams(min_val=0.0, max_val=1.0, bits=1)


class TestQuantizeLayer:
    def test_quantize_layer_returns_codes_and_params(self, rng):
        values = rng.uniform(0, 7.0, size=100)
        codes, params = quantize_layer(values)
        assert codes.shape == values.shape
        assert codes.min() >= 0 and codes.max() <= 255
        assert params.max_val == pytest.approx(values.max())

    def test_zero_values_map_to_zero_code_for_relu_layers(self, rng):
        values = np.concatenate([np.zeros(10), rng.uniform(0, 5, 90)])
        codes, params = quantize_layer(values)
        assert params.min_val == 0.0
        np.testing.assert_array_equal(codes[:10], 0)
