"""The CI regression gate over the performance trajectory.

:func:`check_gate` compares the **newest** trajectory record against the one
before it and fails on any metric that regressed by more than the threshold
(default 20%):

* every experiment wall time present in both records
  (``experiments.<name>.wall_seconds``, same preset required — a preset
  change is a workload change, not a regression);
* every loadgen p95 present in both records
  (``loadgen.<target>.p95_seconds``).

Policy details (``docs/loadgen.md``):

* metrics whose baseline is below ``min_seconds`` (default 0.1 s) are
  skipped — sub-100ms analytic experiments measure scheduler noise, not
  work, and a 0 → 0.01 s "regression" would be division theatre;
* a metric present in only one record is skipped (new workloads start a
  fresh baseline; removed workloads stop being gated);
* fewer than two records is ``no-baseline``: the gate passes with an
  explicit status rather than inventing a comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.loadgen.trajectory import load_trajectory

__all__ = ["DEFAULT_THRESHOLD", "DEFAULT_MIN_SECONDS", "GateFinding", "GateResult", "check_gate", "check_gate_file"]

#: Maximum tolerated relative slowdown before the gate fails.
DEFAULT_THRESHOLD = 0.20

#: Metrics with a baseline below this are noise, not signal; skipped.
DEFAULT_MIN_SECONDS = 0.1


@dataclass(frozen=True)
class GateFinding:
    """One metric's baseline → current comparison."""

    metric: str
    baseline: float
    current: float
    regressed: bool
    skipped: bool = False

    @property
    def change(self) -> float:
        """Relative change (+0.25 = 25% slower)."""
        if self.baseline <= 0:
            return 0.0
        return self.current / self.baseline - 1.0

    def describe(self) -> str:
        tag = "SKIP" if self.skipped else ("FAIL" if self.regressed else "ok")
        return (
            f"[{tag}] {self.metric}: {self.baseline:.3f}s -> {self.current:.3f}s "
            f"({self.change:+.1%})"
        )


@dataclass
class GateResult:
    """Outcome of one gate check."""

    status: str  # "pass" | "fail" | "no-baseline"
    threshold: float
    findings: list[GateFinding] = field(default_factory=list)
    baseline_label: str | None = None
    current_label: str | None = None

    @property
    def ok(self) -> bool:
        return self.status != "fail"

    @property
    def regressions(self) -> list[GateFinding]:
        return [finding for finding in self.findings if finding.regressed]

    def describe(self) -> str:
        if self.status == "no-baseline":
            return "gate: no baseline record to compare against (pass by default)"
        lines = [
            f"gate: {self.current_label or 'newest record'} vs "
            f"{self.baseline_label or 'previous record'} "
            f"(threshold {self.threshold:.0%})"
        ]
        lines += [f"  {finding.describe()}" for finding in self.findings]
        lines.append(
            f"gate: {self.status.upper()} — {len(self.regressions)} regression(s) "
            f"across {sum(1 for f in self.findings if not f.skipped)} compared metric(s)"
        )
        return "\n".join(lines)


def _record_label(record: dict) -> str:
    label = record.get("label")
    sha = record.get("git_sha")
    short = sha[:9] if isinstance(sha, str) else None
    if label and short:
        return f"{label} ({short})"
    return label or short or f"record {record.get('index')}"


def _metrics(record: dict) -> dict[str, tuple[float, str | None]]:
    """Flatten a record into ``metric name -> (seconds, qualifier)``."""
    flat: dict[str, tuple[float, str | None]] = {}
    for name, entry in (record.get("experiments") or {}).items():
        wall = entry.get("wall_seconds")
        if isinstance(wall, (int, float)):
            flat[f"experiment:{name}"] = (float(wall), entry.get("preset"))
    for target, entry in (record.get("loadgen") or {}).items():
        p95 = entry.get("p95_seconds")
        if isinstance(p95, (int, float)):
            flat[f"loadgen:{target}:p95"] = (float(p95), None)
    return flat


def check_gate(
    trajectory: dict,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> GateResult:
    """Gate the newest trajectory record against its predecessor."""
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    records = trajectory.get("records") or []
    if len(records) < 2:
        return GateResult(status="no-baseline", threshold=threshold)
    baseline_record, current_record = records[-2], records[-1]
    baseline = _metrics(baseline_record)
    current = _metrics(current_record)
    findings: list[GateFinding] = []
    for metric in sorted(set(baseline) & set(current)):
        base_value, base_qualifier = baseline[metric]
        cur_value, cur_qualifier = current[metric]
        if base_qualifier != cur_qualifier:
            continue  # preset changed: different workload, no comparison
        if base_value < min_seconds:
            findings.append(
                GateFinding(metric, base_value, cur_value, regressed=False, skipped=True)
            )
            continue
        regressed = cur_value > base_value * (1.0 + threshold)
        findings.append(GateFinding(metric, base_value, cur_value, regressed=regressed))
    status = "fail" if any(finding.regressed for finding in findings) else "pass"
    return GateResult(
        status=status,
        threshold=threshold,
        findings=findings,
        baseline_label=_record_label(baseline_record),
        current_label=_record_label(current_record),
    )


def check_gate_file(
    path,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> GateResult:
    """Load a trajectory file and gate it (the CLI / CI entry point)."""
    return check_gate(load_trajectory(path), threshold=threshold, min_seconds=min_seconds)
