"""``python -m repro cacheserve`` — the standalone network cache server.

Modes:

* ``--tcp HOST:PORT`` (default ``127.0.0.1:0``) — serve the length-prefixed
  JSON frame protocol of ``docs/cachenet.md`` until interrupted or a client
  sends the ``shutdown`` op.  The bound endpoint is announced on stderr
  (``cacheserve listening on HOST:PORT``), so port ``0`` works in scripts.
* ``--selftest`` — start an in-process cache server, run a 2-worker cluster
  cold against ``--cache-backend remote://...``, prove a second cluster of
  *host-fresh* workers serves the same run warm (``simulated 0 configs``)
  with zero local filesystem cache, then stop the server and prove clients
  degrade to recomputation (the degraded counter rises, nothing errors).
  Exits non-zero on any failure; CI runs this.

``--cache-dir`` names the entry directory (the standard gzip entry files plus
the lifecycle manifest — a cache server can adopt any existing cache
directory).  ``--auth-token`` (or ``REPRO_CACHE_TOKEN``) demands a
constant-time-compared shared secret from every connection.  ``--gc-max-age``
is the TTL: with ``--gc-interval`` a background thread evicts entries older
than it; ``--gc-max-bytes`` caps the store LRU-first, same spellings as the
batch CLI's ``--cache-gc``.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments.base import parse_age, parse_size
from repro.runtime.session import default_cache_dir

__all__ = ["main"]


def _parse_endpoint(value: str) -> tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(f"expected HOST:PORT, got {value!r}")
    return host, int(port)


def _selftest() -> int:
    """Cold/warm/degraded, end to end through a real cluster.

    The heavy lifting lives beside the other cluster selftest checks in
    :mod:`repro.cluster.cli` (imported lazily — the cluster layer imports this
    package's backends at module scope).
    """
    from repro.cluster.cli import run_cachenet_selftest

    return run_cachenet_selftest()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cacheserve",
        description="Serve one shared result-cache tier to remote backends over TCP.",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--tcp",
        type=_parse_endpoint,
        default=("127.0.0.1", 0),
        metavar="HOST:PORT",
        help="endpoint to listen on (default: 127.0.0.1:0, ephemeral)",
    )
    mode.add_argument(
        "--selftest",
        action="store_true",
        help="run the cold/warm/degraded cachenet checks in-process and exit",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="entry directory to serve (default: ~/.cache/repro-pragmatic "
        "or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--auth-token",
        default=None,
        metavar="TOKEN",
        help="require clients to authenticate with this shared secret "
        "(default: $REPRO_CACHE_TOKEN)",
    )
    gc = parser.add_argument_group("background GC / TTL")
    gc.add_argument(
        "--gc-interval",
        type=parse_age,
        default=60.0,
        metavar="AGE",
        help="seconds between background GC passes (default: 60)",
    )
    gc.add_argument(
        "--gc-max-bytes",
        type=parse_size,
        default=None,
        metavar="SIZE",
        help="byte cap enforced LRU-first by each background pass (e.g. 500M)",
    )
    gc.add_argument(
        "--gc-max-age",
        "--ttl",
        type=parse_age,
        default=None,
        metavar="AGE",
        dest="gc_max_age",
        help="TTL: evict entries unused for AGE (e.g. 30d)",
    )
    args = parser.parse_args(argv)

    if args.selftest:
        return _selftest()

    if args.auth_token is None:
        args.auth_token = os.environ.get("REPRO_CACHE_TOKEN") or None

    from repro.cachenet.server import CacheServer

    server = CacheServer(
        args.cache_dir or default_cache_dir(),
        auth_token=args.auth_token,
        gc_max_bytes=args.gc_max_bytes,
        gc_max_age=args.gc_max_age,
        gc_interval=args.gc_interval,
    )
    host, port = server.start(*args.tcp)
    print(
        f"repro cacheserve: listening on {host}:{port} "
        f"(cache dir: {server.directory})",
        file=sys.stderr,
        flush=True,
    )
    try:
        # serve_forever runs on the daemon thread; park until interrupted or
        # a client's shutdown op stops the server from within.
        while not server.wait_stopped(timeout=0.5):
            pass
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
