"""Benchmark: regenerate Figure 9 (speedup vs DaDN, per-pallet synchronization)."""

import pytest


def test_bench_fig9(report):
    result = report("fig9")
    geo = {key.split(":")[1]: value for key, value in result.metadata.items() if key.startswith("geomean:")}
    # Engine ordering: DaDN < Stripes < PRA-0b < ... and PRA-2b within a whisker of PRA-4b.
    assert 1.0 < geo["Stripes"] < geo["0-bit"]
    assert geo["0-bit"] <= geo["1-bit"] <= geo["2-bit"] <= geo["4-bit"] * 1.001
    assert geo["2-bit"] == pytest.approx(geo["4-bit"], rel=0.02)
    # Paper headline numbers: Stripes 1.85x, PRA-single 2.59x (shape: 1.3-2.4 / 2.0-3.5).
    assert 1.3 <= geo["Stripes"] <= 2.4
    assert 2.0 <= geo["4-bit"] <= 3.5
    # Pragmatic-without-first-stage-shifters still beats Stripes (paper: ~20%).
    assert geo["0-bit"] / geo["Stripes"] > 1.1
