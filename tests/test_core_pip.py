"""Unit tests for the functional Pragmatic inner product unit and tile."""

import numpy as np
import pytest

from repro.core.pip import PragmaticInnerProductUnit, PragmaticTileFunctional
from repro.nn.reference import conv2d_reference
from repro.nn.traces import generate_synapses


class TestPragmaticInnerProductUnit:
    def test_simple_inner_product(self):
        pip = PragmaticInnerProductUnit(first_stage_bits=4)
        synapses = np.array([2, 3])
        neurons = np.array([1, 2])  # 1*2 + 2*3 = 8
        partial, cycles = pip.compute(synapses, neurons)
        assert partial == 8
        assert cycles == 1

    def test_matches_dot_product_for_random_bricks(self, rng):
        for first_stage_bits in range(5):
            pip = PragmaticInnerProductUnit(first_stage_bits=first_stage_bits)
            for _ in range(10):
                synapses = rng.integers(-256, 256, size=16)
                neurons = rng.integers(0, 2**12, size=16)
                neurons[rng.random(16) < 0.4] = 0
                partial, cycles = pip.compute(synapses, neurons)
                assert partial == int(np.dot(synapses, neurons))
                assert cycles >= 1

    def test_handles_negative_neurons_via_sign_input(self, rng):
        pip = PragmaticInnerProductUnit(first_stage_bits=2)
        synapses = rng.integers(-64, 64, size=16)
        neurons = rng.integers(-2**10, 2**10, size=16)
        partial, _ = pip.compute(synapses, neurons)
        assert partial == int(np.dot(synapses, neurons))

    def test_zero_neurons_cost_one_cycle(self):
        pip = PragmaticInnerProductUnit(first_stage_bits=2)
        partial, cycles = pip.compute(np.arange(16), np.zeros(16, dtype=int))
        assert partial == 0
        assert cycles == 1

    def test_cycles_grow_with_narrower_first_stage(self, rng):
        synapses = rng.integers(-8, 8, size=16)
        neurons = rng.integers(0, 2**16, size=16)
        cycles = []
        for bits in (4, 2, 0):
            _, c = PragmaticInnerProductUnit(first_stage_bits=bits).compute(synapses, neurons)
            cycles.append(c)
        assert cycles == sorted(cycles)

    def test_worst_case_value_takes_sixteen_cycles(self):
        pip = PragmaticInnerProductUnit(first_stage_bits=4)
        neurons = np.zeros(16, dtype=int)
        neurons[0] = 0xFFFF
        _, cycles = pip.compute(np.ones(16, dtype=int), neurons)
        assert cycles == 16

    def test_mismatched_brick_sizes_rejected(self):
        pip = PragmaticInnerProductUnit()
        with pytest.raises(ValueError):
            pip.compute(np.ones(16), np.ones(8))

    def test_rejects_out_of_range_configuration(self):
        with pytest.raises(ValueError):
            PragmaticInnerProductUnit(first_stage_bits=9)
        with pytest.raises(ValueError):
            PragmaticInnerProductUnit(storage_bits=0)

    def test_rejects_too_wide_neurons(self):
        pip = PragmaticInnerProductUnit(storage_bits=8)
        with pytest.raises(ValueError):
            pip.compute(np.ones(4), np.array([256, 0, 0, 0]))


class TestPragmaticTileFunctional:
    @pytest.mark.parametrize("first_stage_bits", [0, 2, 4])
    def test_matches_reference_convolution(self, tiny_layer, tiny_trace, rng, first_stage_bits):
        neurons = tiny_trace.layer_input(0)
        synapses = generate_synapses(tiny_layer, rng)
        tile = PragmaticTileFunctional(first_stage_bits=first_stage_bits)
        outputs, cycles = tile.compute_layer(tiny_layer, neurons, synapses)
        np.testing.assert_array_equal(outputs, conv2d_reference(tiny_layer, neurons, synapses))
        assert cycles >= tiny_layer.window_groups * tiny_layer.bricks_per_window

    def test_matches_reference_with_stride(self, strided_layer, rng):
        neurons = rng.integers(0, 512, size=(16, 9, 9))
        neurons[rng.random(neurons.shape) < 0.5] = 0
        synapses = generate_synapses(strided_layer, rng)
        tile = PragmaticTileFunctional(first_stage_bits=2)
        outputs, _ = tile.compute_layer(strided_layer, neurons, synapses)
        np.testing.assert_array_equal(outputs, conv2d_reference(strided_layer, neurons, synapses))

    def test_cycles_never_exceed_bit_serial_worst_case(self, tiny_layer, tiny_trace, rng):
        neurons = tiny_trace.layer_input(0)
        synapses = generate_synapses(tiny_layer, rng)
        tile = PragmaticTileFunctional(first_stage_bits=4)
        _, cycles = tile.compute_layer(tiny_layer, neurons, synapses)
        worst = tiny_layer.window_groups * tiny_layer.bricks_per_window * 16
        assert cycles <= worst

    def test_sparser_inputs_run_faster(self, tiny_layer, rng):
        synapses = generate_synapses(tiny_layer, rng)
        dense = rng.integers(1, 2**12, size=(24, 6, 6))
        sparse = dense.copy()
        sparse[rng.random(sparse.shape) < 0.8] = 0
        tile = PragmaticTileFunctional(first_stage_bits=4)
        _, dense_cycles = tile.compute_layer(tiny_layer, dense, synapses)
        _, sparse_cycles = tile.compute_layer(tiny_layer, sparse, synapses)
        assert sparse_cycles < dense_cycles
