"""Unit tests for the Table I calibration of synthetic traces."""

import numpy as np
import pytest

from repro.nn.calibration import (
    TABLE1_TARGETS,
    calibrate_network,
    calibrated_trace,
    storage_bits_for,
)
from repro.nn.networks import NETWORK_NAMES
from repro.numerics.fixedpoint import popcount


class TestTargets:
    def test_targets_cover_all_networks_and_representations(self):
        for representation in ("fixed16", "quant8"):
            for statistic in ("all", "nz"):
                assert set(TABLE1_TARGETS[representation][statistic]) == set(NETWORK_NAMES)

    def test_nz_always_exceeds_all(self):
        for representation in ("fixed16", "quant8"):
            for name in NETWORK_NAMES:
                assert (
                    TABLE1_TARGETS[representation]["nz"][name]
                    > TABLE1_TARGETS[representation]["all"][name]
                )

    def test_storage_bits_for(self):
        assert storage_bits_for("fixed16") == 16
        assert storage_bits_for("quant8") == 8
        with pytest.raises(ValueError):
            storage_bits_for("int4")


class TestCalibration:
    def test_calibration_hits_target_within_tolerance(self):
        calibration = calibrate_network("alexnet")
        assert calibration.achieved_nz_fraction == pytest.approx(
            calibration.target_nz_fraction, rel=0.05
        )

    def test_zero_fraction_consistent_with_table1(self):
        calibration = calibrate_network("vgg_m")
        targets = TABLE1_TARGETS["fixed16"]
        expected = 1.0 - targets["all"]["vgg_m"] / targets["nz"]["vgg_m"]
        assert calibration.zero_fraction == pytest.approx(expected, abs=1e-9)

    def test_calibration_is_cached_and_deterministic(self):
        first = calibrate_network("nin")
        second = calibrate_network("nin")
        assert first is second

    def test_quant8_calibration_targets_quant_table(self):
        calibration = calibrate_network("alexnet", representation="quant8")
        assert calibration.representation == "quant8"
        assert calibration.target_nz_fraction == TABLE1_TARGETS["quant8"]["nz"]["alexnet"]

    def test_unknown_network_rejected(self):
        with pytest.raises(KeyError):
            calibrate_network("lenet")


class TestCalibratedTrace:
    def test_trace_covers_all_layers(self):
        trace = calibrated_trace("alexnet")
        assert trace.network.num_layers == len(trace.params) == len(trace.precisions)
        assert trace.storage_bits == 16

    def test_quant8_trace_uses_eight_bits(self):
        trace = calibrated_trace("alexnet", representation="quant8")
        assert trace.storage_bits == 8
        values = trace.sample_layer_values(1, 2000)
        assert values.max() <= 255

    def test_first_layer_is_dense_by_default(self):
        trace = calibrated_trace("alexnet")
        first = trace.sample_layer_values(0, 4000)
        later = trace.sample_layer_values(2, 4000)
        assert np.count_nonzero(first == 0) / first.size < 0.05
        assert np.count_nonzero(later == 0) / later.size > 0.3

    def test_sparse_first_layer_option(self):
        trace = calibrated_trace("alexnet", dense_first_layer=False)
        first = trace.sample_layer_values(0, 4000)
        assert np.count_nonzero(first == 0) / first.size > 0.3

    def test_nonzero_bit_content_tracks_target(self):
        trace = calibrated_trace("vgg19")
        target = TABLE1_TARGETS["fixed16"]["nz"]["vgg19"]
        fractions = []
        for index in range(1, trace.network.num_layers):
            values = trace.sample_layer_values(index, 4000)
            nonzero = values[values != 0]
            fractions.append(popcount(nonzero, 16).mean() / 16)
        measured = float(np.mean(fractions))
        assert measured == pytest.approx(target, rel=0.25)

    def test_explicit_precisions_change_trace_windows(self):
        trace = calibrated_trace("alexnet", precisions=(4, 4, 4, 4, 4))
        assert all(p.width == 4 for p in trace.precisions)

    def test_explicit_precisions_rejected_for_quant8(self):
        with pytest.raises(ValueError):
            calibrated_trace("alexnet", representation="quant8", precisions=(4,) * 5)

    def test_seed_changes_values_not_calibration(self):
        a = calibrated_trace("alexnet", seed=0).sample_layer_values(1, 200)
        b = calibrated_trace("alexnet", seed=1).sample_layer_values(1, 200)
        assert not np.array_equal(a, b)
