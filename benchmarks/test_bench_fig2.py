"""Benchmark: regenerate Figure 2 (term counts, 16-bit fixed point)."""


def test_bench_fig2(report):
    result = report("fig2")
    geomean = {key.split(":")[1]: value for key, value in result.metadata.items() if key.startswith("geomean:")}
    # Pragmatic needs by far the fewest terms; software guidance helps further.
    assert geomean["PRA-red"] <= geomean["PRA-fp16"] < 0.25
    assert geomean["PRA-fp16"] < geomean["Stripes"] < 1.0
    assert geomean["PRA-fp16"] < geomean["ZN"] <= geomean["CVN"] <= 1.0
