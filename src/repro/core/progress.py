"""Cooperative cancellation and progress reporting for long simulations.

A :class:`ProgressToken` is the handle the serving layer threads down through
:mod:`repro.runtime` into :func:`repro.core.sweep.sweep_network`.  The sweep
calls :meth:`ProgressToken.checkpoint` between layers and drain groups — the
natural unit boundaries of the paper's cost model — and raises
:class:`SweepCancelled` as soon as the token has been cancelled, so a worker
executing an abandoned request frees up after at most one drain-group's worth
of extra work instead of finishing the whole network.

Checkpoints deliberately sit *between* cache writes, never inside them: a
cancelled sweep simply never produced the results it was asked for, and
everything it did complete before the cancellation is still valid (and, one
level up, already cached).  Cancellation therefore cannot corrupt the result
cache.

The same token carries progress *out*: :meth:`ProgressToken.emit` forwards
structured progress events (per-layer, per-network, per-experiment) to an
observer callback.  Observers run on the simulating thread and must be cheap;
an observer that raises is disarmed rather than allowed to abort the sweep.
"""

from __future__ import annotations

import threading
from typing import Callable

__all__ = ["ProgressToken", "SweepCancelled"]


class SweepCancelled(RuntimeError):
    """Raised at a cooperative checkpoint after the token was cancelled."""


class ProgressToken:
    """Cancel flag + progress sink shared between a controller and a sweep.

    Thread-safe by construction: the controller (an event loop, a signal
    handler, another thread) calls :meth:`cancel`; the simulating thread polls
    via :meth:`checkpoint`.  ``on_progress`` may be (re)assigned at any time;
    ``None`` disables event emission entirely.
    """

    def __init__(
        self, on_progress: Callable[[dict], None] | None = None
    ) -> None:
        self._cancelled = threading.Event()
        self.on_progress = on_progress
        #: Optional callback invoked (once) when cancellation is requested.
        #: The sweep itself polls via :meth:`checkpoint`; this hook exists for
        #: controllers that must *forward* a cancellation instead of polling —
        #: the cluster coordinator uses it to relay a client's cancel to the
        #: worker process that owns the running job.  Runs on the cancelling
        #: thread; a raising callback is disarmed, never propagated.  Note the
        #: hook is consumed at cancel time — a callback assigned *after*
        #: cancellation must pair the assignment with a ``cancelled`` check.
        self.on_cancel: Callable[[], None] | None = None
        self._cancel_lock = threading.Lock()

    # ----------------------------------------------------------- cancellation
    def cancel(self) -> None:
        """Request cooperative cancellation (idempotent, thread-safe)."""
        self._cancelled.set()
        # Atomically consume the hook so concurrent cancels from two threads
        # cannot both observe it — the callback runs exactly once.
        with self._cancel_lock:
            observer, self.on_cancel = self.on_cancel, None
        if observer is not None:
            try:
                observer()
            except Exception:
                pass

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._cancelled.is_set()

    def checkpoint(self) -> None:
        """Raise :class:`SweepCancelled` if cancellation has been requested.

        Call this only at points where abandoning the work is safe — between
        layers, drain groups, networks or experiments; never between a
        computation and the cache write that persists it.
        """
        if self._cancelled.is_set():
            raise SweepCancelled("cancelled at a cooperative checkpoint")

    # --------------------------------------------------------------- progress
    def emit(self, event: dict) -> None:
        """Deliver one progress event to the observer (if any).

        Events are plain dicts with at least a ``"stage"`` key (``"layer"``,
        ``"network"``, ``"statistics"``, ``"experiment"`` …).  A raising
        observer is disarmed so simulation work is never lost to a broken
        progress consumer.
        """
        observer = self.on_progress
        if observer is None:
            return
        try:
            observer(event)
        except Exception:
            self.on_progress = None
