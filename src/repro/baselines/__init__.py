"""Baseline accelerators the paper compares Pragmatic against."""

from repro.baselines.dadiannao import DaDianNaoFunctional, DaDianNaoModel
from repro.baselines.stripes import StripesFunctional, StripesModel
from repro.baselines.zero_skip import ZeroSkipModel, zero_fraction

__all__ = [
    "DaDianNaoModel",
    "DaDianNaoFunctional",
    "StripesModel",
    "StripesFunctional",
    "ZeroSkipModel",
    "zero_fraction",
]
