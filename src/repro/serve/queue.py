"""The async request queue: tickets, jobs, coalescing and cancellation.

A **job** is one unit of execution, identified by its request's content hash.
A **ticket** is one client request.  Submitting a request whose hash matches
an in-flight (queued or running) job attaches a new ticket to that job instead
of enqueueing a second execution — that is the request coalescing the serving
layer promises: N concurrent identical requests cost one simulation pass, and
every ticket receives the same result and stats.  Queued jobs are ordered by
**priority** (highest first, FIFO within a level); a coalesced ticket carrying
a higher priority raises the pending job's priority.

Lifecycle: ``queued → running → done | failed``, with ``cancelled`` reachable
from ``queued`` *and* from ``running``: every job carries a
:class:`~repro.core.progress.ProgressToken`, and cancelling the last live
ticket of a running job cancels the token — the sweep observes it at its next
cooperative checkpoint, raises ``SweepCancelled`` and frees the worker
(cancelling a ticket that shares its job with other live tickets still just
detaches that ticket).  The same token carries per-layer/per-network progress
events back up; tickets that registered an ``on_progress`` callback (the
protocol's ``stream`` flag) receive them as they happen.  All state lives on
the event loop — only the execution itself leaves it (see
:mod:`repro.serve.workers`).  ``docs/serving.md`` walks through the model.
"""

from __future__ import annotations

import asyncio
import collections
import heapq
import itertools
import time
from typing import Callable

from repro.core.progress import ProgressToken
from repro.serve.protocol import ServeRequest

__all__ = ["Ticket", "Job", "RequestQueue"]

#: Job/ticket lifecycle states.
STATES = ("queued", "running", "done", "failed", "cancelled")

#: How many *finished* tickets stay resolvable through ``status``.  Beyond
#: this, the oldest are evicted (with their jobs' result payloads), keeping a
#: long-lived server's memory bounded under steady traffic.  In-process
#: callers hold their Ticket objects directly and are unaffected.
FINISHED_TICKET_HISTORY = 1024


class Job:
    """One coalesced unit of execution (1..N tickets share it).

    ``token`` is the job's cooperative cancellation/progress handle: the
    worker hands it to the execution (where the sweep checkpoints it) and
    wires its progress callback back to the queue's live tickets.
    """

    def __init__(self, key: str, request: ServeRequest, priority: int = 0) -> None:
        self.key = key
        self.request = request
        self.priority = priority
        self.state = "queued"
        self.result: dict | None = None
        self.error: str | None = None
        self.stats: dict = {}
        self.tickets: list[Ticket] = []
        self.done = asyncio.Event()
        self.enqueued: float = time.perf_counter()
        self.started: float | None = None
        self.finished_at: float | None = None
        self.elapsed: float | None = None
        self.token = ProgressToken()

    def timings(self) -> dict | None:
        """Server-side wall-clock breakdown of a *finished* job.

        ``queue_wait_seconds`` covers enqueue → first execution (the whole
        life for a job that never ran), ``execution_seconds`` the worker's
        share, ``total_seconds`` enqueue → terminal state.  Measured on the
        server so load-generator latency breakdowns do not depend solely on
        client-side clocks; ``None`` while the job is still in flight.
        """
        if self.finished_at is None:
            return None
        started = self.started if self.started is not None else self.finished_at
        return {
            "queue_wait_seconds": round(max(0.0, started - self.enqueued), 6),
            "execution_seconds": round(
                self.finished_at - self.started if self.started is not None else 0.0, 6
            ),
            "total_seconds": round(self.finished_at - self.enqueued, 6),
        }

    @property
    def live_tickets(self) -> list["Ticket"]:
        return [ticket for ticket in self.tickets if not ticket.cancelled]


class Ticket:
    """One client request, attached to (possibly sharing) a job.

    ``on_event`` receives lifecycle transitions (``queued``, ``running``,
    ``done``, ``failed``, ``cancelled``); ``on_progress`` — when registered —
    additionally receives every structured progress event the job's execution
    emits (the ``stream: true`` protocol flag).
    """

    def __init__(
        self,
        ticket_id: str,
        job: Job,
        coalesced: bool,
        on_event: Callable[["Ticket", str], None] | None = None,
        on_progress: Callable[["Ticket", dict], None] | None = None,
    ) -> None:
        self.ticket_id = ticket_id
        self.job = job
        self.coalesced = coalesced
        self.cancelled = False
        self.retired = False
        self.on_event = on_event
        self.on_progress = on_progress

    @property
    def state(self) -> str:
        return "cancelled" if self.cancelled else self.job.state

    def notify(self, event: str) -> None:
        if self.on_event is not None and not self.cancelled:
            self.on_event(self, event)

    def notify_progress(self, payload: dict) -> None:
        if self.on_progress is not None and not self.cancelled:
            self.on_progress(self, payload)


class RequestQueue:
    """Priority queue of jobs with content-hash deduplication of in-flight requests.

    Jobs pop highest-priority-first, FIFO within a priority level (priority 0
    is the default, so a priority-free deployment behaves exactly like the
    old FIFO).  Coalescing and priorities compose: a coalesced ticket can
    raise — never lower — the priority of a still-queued job.
    """

    def __init__(self) -> None:
        #: Pending jobs as a max-priority heap of ``(-priority, seq, job)``.
        #: Raising a queued job's priority pushes a *second* entry instead of
        #: re-heapifying; stale entries (priority no longer current, or job no
        #: longer queued) are skipped lazily at pop time.
        self._pending: list[tuple[int, int, Job]] = []
        self._pending_seq = itertools.count()
        self._pending_wakeup = asyncio.Event()
        self._inflight: dict[str, Job] = {}
        #: Cancelled-while-running jobs still occupying a worker until their
        #: next cooperative checkpoint (detached from ``_inflight`` so fresh
        #: identical requests don't coalesce onto them, but still *running*
        #: as far as capacity accounting goes).
        self._unwinding: set[Job] = set()
        self._tickets: dict[str, Ticket] = {}
        self._finished: collections.deque[str] = collections.deque()
        self._counter = itertools.count(1)
        #: Set by stop_workers(): workers stop pulling jobs immediately.
        self.stopping = False
        #: Optional hook invoked once per finished job (before ticket events).
        self.on_finish: Callable[[Job], None] | None = None
        #: Totals since service start.
        self.submitted = 0
        self.coalesced = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        #: Jobs interrupted *while running* via their cooperative token.
        self.interrupted = 0

    # ------------------------------------------------------------------ submit
    def _push_pending(self, job: Job) -> None:
        """Heap-insert ``job`` at its current priority and wake a worker."""
        heapq.heappush(self._pending, (-job.priority, next(self._pending_seq), job))
        self._pending_wakeup.set()

    def submit(
        self,
        request: ServeRequest,
        on_event: Callable[[Ticket, str], None] | None = None,
        on_progress: Callable[[Ticket, dict], None] | None = None,
        priority: int = 0,
    ) -> Ticket:
        """Enqueue ``request`` (or coalesce it onto an identical in-flight job).

        ``priority`` orders *queued* jobs: workers pop the highest priority
        first, FIFO within a priority level.  Coalescing preserves the
        strongest demand — a ticket attaching to a queued job with a higher
        priority raises that job's priority (never lowers it).

        Once :meth:`stop_workers` has been called the backlog is already
        abandoned and no worker will ever pull again, so a late submission
        is failed immediately — its ticket resolves (and its events fire)
        instead of hanging forever.
        """
        key = request.key()
        if self.stopping:
            job = Job(key, request, priority)
            ticket = Ticket(f"t{next(self._counter)}", job, False, on_event, on_progress)
            job.tickets.append(ticket)
            self._tickets[ticket.ticket_id] = ticket
            self.submitted += 1
            self.finish(job, error="service is stopping; submission rejected")
            return ticket
        job = self._inflight.get(key)
        coalesced = job is not None
        if job is None:
            job = Job(key, request, priority)
            self._inflight[key] = job
            self._push_pending(job)
        elif priority > job.priority and job.state == "queued":
            # A coalesced ticket may raise a pending job's priority: push a
            # fresh heap entry; the old (lower) one is skipped at pop time.
            job.priority = priority
            self._push_pending(job)
        ticket = Ticket(f"t{next(self._counter)}", job, coalesced, on_event, on_progress)
        job.tickets.append(ticket)
        self._tickets[ticket.ticket_id] = ticket
        self.submitted += 1
        if coalesced:
            self.coalesced += 1
        ticket.notify(job.state)  # "queued", or "running" when coalescing late
        return ticket

    # ------------------------------------------------------------------ workers
    async def next_job(self) -> Job | None:
        """The next executable job, highest priority first; ``None`` stops.

        Within one priority level jobs pop FIFO.  Fully-cancelled jobs and
        stale heap entries (a job whose priority was raised after it was
        pushed, or that already started) are skipped.  Once
        :meth:`stop_workers` has been called, returns ``None`` without
        draining the backlog — shutdown abandons queued jobs rather than
        executing them.
        """
        while True:
            if self.stopping:
                return None
            while self._pending:
                neg_priority, _, job = heapq.heappop(self._pending)
                if job.state != "queued" or -neg_priority != job.priority:
                    continue  # cancelled, already started, or a stale entry
                return job
            self._pending_wakeup.clear()
            await self._pending_wakeup.wait()

    def mark_running(self, job: Job) -> None:
        job.state = "running"
        job.started = time.perf_counter()
        for ticket in job.live_tickets:
            ticket.notify("running")

    def deliver_progress(self, job: Job, payload: dict) -> None:
        """Fan one progress event out to the job's streaming tickets.

        Invoked on the event loop (the worker marshals events off the
        simulating thread with ``call_soon_threadsafe``); events arriving
        after the job reached a terminal state are dropped.
        """
        if job.state != "running":
            return
        for ticket in job.live_tickets:
            ticket.notify_progress(payload)

    def finish(
        self,
        job: Job,
        result: dict | None = None,
        error: str | None = None,
        stats: dict | None = None,
        cancelled: bool = False,
    ) -> None:
        """Complete a job and fan its outcome out to every live ticket.

        ``cancelled=True`` marks a job whose *running* execution was
        interrupted at a cooperative checkpoint: it terminates in state
        ``cancelled`` instead of ``failed``/``done``.
        """
        job.result = result
        job.error = error
        job.stats = stats or {}
        job.finished_at = time.perf_counter()
        job.elapsed = (
            job.finished_at - job.started if job.started is not None else None
        )
        if cancelled:
            job.state = "cancelled"
            self.interrupted += 1
        elif error is not None:
            job.state = "failed"
            self.failed += 1
        else:
            job.state = "done"
            self.completed += 1
        # Identity-guarded: a cancelled-while-running job was already detached
        # from the in-flight index, and a fresh job may have taken its key.
        if self._inflight.get(job.key) is job:
            del self._inflight[job.key]
        self._unwinding.discard(job)
        if self.on_finish is not None:
            self.on_finish(job)
        job.done.set()
        for ticket in job.live_tickets:
            ticket.notify(job.state)
        for ticket in job.tickets:
            self._retire(ticket)

    def stop_workers(self, count: int) -> None:
        """Stop dispatching: wake every waiting worker and abandon the backlog."""
        self.stopping = True
        self._pending_wakeup.set()

    def abandon_pending(self) -> int:
        """Fail every still-queued job so its waiters unblock; returns count.

        Called after the workers have exited: jobs they never picked up are
        completed with an error instead of being left to hang their tickets.
        """
        abandoned = 0
        while self._pending:
            _, _, job = heapq.heappop(self._pending)
            if job.state != "queued":
                continue
            self.finish(job, error="service stopped before this job ran")
            abandoned += 1
        return abandoned

    def _retire(self, ticket: Ticket) -> None:
        """Move a terminal ticket into the bounded history, evicting the oldest."""
        if ticket.retired:
            return
        ticket.retired = True
        self._finished.append(ticket.ticket_id)
        while len(self._finished) > FINISHED_TICKET_HISTORY:
            self._tickets.pop(self._finished.popleft(), None)

    # ------------------------------------------------------------------ control
    def get(self, ticket_id: str) -> Ticket | None:
        return self._tickets.get(ticket_id)

    def cancel(self, ticket_id: str) -> tuple[bool, str]:
        """Cancel a ticket; returns ``(changed, resulting state)``.

        A queued job whose tickets are all cancelled is dropped before it
        runs.  Cancelling the *last* live ticket of a running job cancels the
        job's cooperative token: the execution raises ``SweepCancelled`` at
        its next checkpoint and the worker is freed (results the sweep
        completed before the checkpoint are already in the shared cache).
        While other live tickets share the job it keeps running and only this
        ticket detaches.
        """
        ticket = self._tickets.get(ticket_id)
        if ticket is None:
            raise KeyError(f"unknown ticket {ticket_id!r}")
        if ticket.cancelled or ticket.job.state in ("done", "failed", "cancelled"):
            return False, ticket.state
        ticket.cancelled = True
        self.cancelled += 1
        self._retire(ticket)
        job = ticket.job
        if not job.live_tickets:
            if job.state == "queued":
                job.state = "cancelled"
                job.finished_at = time.perf_counter()
                self._inflight.pop(job.key, None)
                job.done.set()
            elif job.state == "running":
                # Interrupt the execution cooperatively and detach the doomed
                # job from the in-flight index immediately, so an identical
                # request submitted from here on starts fresh instead of
                # coalescing onto a job that will never produce a result.
                job.token.cancel()
                if self._inflight.get(job.key) is job:
                    del self._inflight[job.key]
                self._unwinding.add(job)
        # Deliver the terminal event directly: notify() suppresses cancelled
        # tickets, but the waiter behind this one must still be unblocked.
        if ticket.on_event is not None:
            ticket.on_event(ticket, "cancelled")
        return True, ticket.state

    def depth(self) -> dict[str, int]:
        """Queue-level counters for the ``stats`` op.

        ``running`` includes cancelled jobs still unwinding toward their next
        checkpoint: they occupy real worker capacity until they finish.
        """
        return {
            "queued": sum(1 for job in self._inflight.values() if job.state == "queued"),
            "running": sum(1 for job in self._inflight.values() if job.state == "running")
            + len(self._unwinding),
            "submitted": self.submitted,
            "coalesced": self.coalesced,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "interrupted": self.interrupted,
        }
