"""Tests for the experiment harness (registry, presets, light experiments)."""

import pytest

import json

from repro.experiments import runner
from repro.experiments.base import (
    PRESETS,
    ExperimentResult,
    Preset,
    export_results,
    get_preset,
)
from repro.experiments import table3, table4

#: Tiny preset used to exercise the trace/cycle experiments quickly.
TINY = Preset(name="tiny", networks=("alexnet",), samples_per_layer=1500, max_pallets=2)


class TestPresets:
    def test_known_presets_exist(self):
        assert {"smoke", "fast", "full"} <= set(PRESETS)

    def test_get_preset_by_name_and_object(self):
        assert get_preset("fast").name == "fast"
        assert get_preset(TINY) is TINY

    def test_get_preset_rejects_unknown(self):
        with pytest.raises(KeyError):
            get_preset("enormous")

    def test_sampling_uses_preset_pallets(self):
        assert get_preset("fast").sampling().max_pallets == PRESETS["fast"].max_pallets


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "fig2",
            "fig3",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "ablation",
            "extension_csd",
            "encodings",
        }
        assert expected == set(runner.EXPERIMENTS)

    def test_run_experiment_rejects_unknown(self):
        with pytest.raises(KeyError):
            runner.run_experiment("fig99")

    def test_cli_requires_an_action(self, capsys):
        with pytest.raises(SystemExit):
            runner.main([])

    def test_cli_runs_single_experiment(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        argv = ["--experiment", "table3", "--preset", "smoke", "--cache-dir", cache]
        assert runner.main(argv) == 0
        output = capsys.readouterr().out
        assert "Table III" in output
        assert "PRA-2b" in output
        assert "== run summary ==" in output

    def test_cli_lists_experiments(self, capsys):
        assert runner.main(["--list"]) == 0
        output = capsys.readouterr().out
        for name in runner.EXPERIMENTS:
            assert name in output
        assert "Table V" in output  # descriptions come from module docstrings

    def test_cli_rejects_bad_jobs(self):
        with pytest.raises(SystemExit):
            runner.main(["--experiment", "table3", "--jobs", "0"])

    def test_cli_exports_artifacts(self, capsys, tmp_path):
        out = tmp_path / "artifacts"
        argv = [
            "--experiment",
            "table3",
            "--preset",
            "smoke",
            "--no-cache",
            "--out",
            str(out),
        ]
        assert runner.main(argv) == 0
        payload = json.loads((out / "table3.json").read_text())
        assert payload["experiment"] == "table3"
        assert payload["headers"][0] == "design"

    def test_module_dispatches_runner_and_serve(self, capsys):
        import repro.__main__ as entry

        # Anything but "serve" is the batch runner CLI.
        assert entry.main(["--list"]) == 0
        assert "fig9" in capsys.readouterr().out
        # "serve" routes to the serving CLI (its parser rejects bad workers).
        with pytest.raises(SystemExit):
            entry.main(["serve", "--workers", "0"])


class TestArtifacts:
    def test_result_json_round_trip(self):
        result = table3.run(preset="smoke")
        rebuilt = ExperimentResult.from_dict(json.loads(result.to_json()))
        assert rebuilt == result

    def test_export_results_writes_one_file_per_experiment(self, tmp_path):
        result = table3.run(preset="smoke")
        paths = export_results({"table3": result}, tmp_path)
        assert [path.name for path in paths] == ["table3.json"]
        assert json.loads(paths[0].read_text())["metadata"]["DaDN:chip_w"] == pytest.approx(
            result.metadata["DaDN:chip_w"]
        )


class TestEnergyTables:
    def test_table3_rows_cover_all_designs(self):
        result = table3.run(preset="smoke")
        assert isinstance(result, ExperimentResult)
        designs = [row[0] for row in result.rows]
        assert designs == ["DaDN", "Stripes", "PRA-0b", "PRA-1b", "PRA-2b", "PRA-3b", "PRA-4b"]

    def test_table3_tracks_paper_values(self):
        result = table3.run(preset="smoke")
        for label, (unit, _, power) in table3.PAPER_TABLE3.items():
            assert result.metadata[f"{label}:unit_mm2"] == pytest.approx(unit, rel=0.05)
            assert result.metadata[f"{label}:chip_w"] == pytest.approx(power, rel=0.05)

    def test_table4_tracks_paper_values(self):
        result = table4.run(preset="smoke")
        for label, (unit, _, power) in table4.PAPER_TABLE4.items():
            assert result.metadata[f"{label}:unit_mm2"] == pytest.approx(unit, rel=0.05)
            assert result.metadata[f"{label}:chip_w"] == pytest.approx(power, rel=0.05)

    def test_result_renders_to_text(self):
        text = table4.run(preset="smoke").to_text()
        assert "Table IV" in text
        assert "PRA-2b-16R" in text


class TestTraceExperiments:
    def test_table1_measures_both_representations(self):
        from repro.experiments import table1

        result = table1.run(preset=TINY)
        assert "fixed16:alexnet:nz" in result.metadata
        assert "quant8:alexnet:nz" in result.metadata
        assert 0.0 < result.metadata["fixed16:alexnet:nz"] < 0.5

    def test_fig2_pragmatic_needs_fewest_terms(self):
        from repro.experiments import fig2

        result = fig2.run(preset=TINY)
        assert (
            result.metadata["geomean:PRA-red"]
            <= result.metadata["geomean:PRA-fp16"]
            < result.metadata["geomean:Stripes"]
        )

    def test_table2_reports_published_and_profiled(self):
        from repro.experiments import table2

        result = table2.run(preset=TINY)
        assert result.rows[0][1].startswith("9-8-5-5-7")

    def test_fig9_orders_engines_correctly(self):
        from repro.experiments import fig9

        result = fig9.run(preset=TINY)
        stripes = result.metadata["geomean:Stripes"]
        zero_bit = result.metadata["geomean:0-bit"]
        four_bit = result.metadata["geomean:4-bit"]
        assert 1.0 < stripes < zero_bit <= four_bit
        assert result.metadata["geomean:2-bit"] == pytest.approx(four_bit, rel=0.05)


class TestEncodingExperiments:
    """The registry-backed encoding experiments against pre-refactor goldens."""

    def test_extension_csd_pins_pre_registry_numbers(self):
        """extension_csd now counts terms via the registry; the alexnet row
        and metadata must be bit-identical to the pre-refactor popcount /
        csd_term_counts implementation (smoke preset, seed 0 goldens)."""
        from repro.experiments import extension_csd

        result = extension_csd.run(preset="smoke", seed=0)
        assert result.rows[0] == ["alexnet", "43.2%", "8.5%", "7.1%", "16.1%"]
        golden = {
            "alexnet:Stripes": 0.4323407543723599,
            "alexnet:PRA-fp16": 0.08501699631123717,
            "alexnet:PRA-csd": 0.07131134218329231,
            "alexnet:reduction": 0.16121075458570755,
            "geomean:Stripes": 0.44268374470294847,
            "geomean:PRA-fp16": 0.07252983180103656,
            "geomean:PRA-csd": 0.060960373237296236,
            "geomean:reduction": 0.15951310345621095,
        }
        for key, value in golden.items():
            assert result.metadata[key] == pytest.approx(value, rel=1e-12), key

    def test_encodings_positional_matches_fig9_two_bit(self):
        """The positional column of the encodings experiment is the PRA-2b
        point of Figure 9 — same configs, same cache entries, same numbers."""
        from repro.experiments import encodings, fig9

        encoded = encodings.run(preset=TINY)
        figure = fig9.run(preset=TINY)
        assert encoded.metadata["alexnet:positional"] == pytest.approx(
            figure.metadata["alexnet:2-bit"], rel=1e-12
        )

    def test_encodings_covers_every_registered_encoding(self):
        from repro.experiments import encodings
        from repro.numerics.encodings import encoding_names

        result = encodings.run(preset=TINY)
        for name in encoding_names():
            assert f"alexnet:{name}" in result.metadata
            assert f"geomean:{name}" in result.metadata
        # Signed encodings reduce term traffic below positional; binary is
        # the degenerate lossy floor.
        assert result.metadata["alexnet:csd:terms"] < 1.0
        assert result.metadata["alexnet:hese:terms"] < 1.0
        assert (
            result.metadata["alexnet:binary:terms"]
            < result.metadata["alexnet:csd:terms"]
        )
        assert (
            result.metadata["alexnet:positional"]
            <= result.metadata["alexnet:csd"]
        )
        assert "binar" in result.notes

    def test_encodings_plan_exposes_job_graph(self):
        """The runner's dedup hook sees one request per network, each
        spanning the full registry."""
        from repro.experiments import encodings
        from repro.numerics.encodings import encoding_names

        requests = encodings.plan(preset=TINY)
        assert len(requests) == 1
        (request,) = requests
        assert tuple(name for name, _ in request.configs) == encoding_names()
        for name, config in request.configs:
            assert config.encoding == name
