"""The asyncio client swarm: replay a compiled schedule against a server.

:class:`LoadSwarm` opens one real :class:`~repro.serve.client.ServeClient`
TCP connection per simulated client and replays the mix's deterministic
schedule: plain requests await their terminal event, streamed requests
iterate progress events, cancel-flagged requests cancel their ticket as soon
as the first event names it.  Every finished request records client-observed
latency plus the server-reported ``timings`` breakdown, and the run closes by
capturing the server's ``stats`` op — coalescing effectiveness, queue
counters and (against a cluster coordinator) per-worker completion counts.

The swarm targets anything that speaks the serve protocol: a single
``repro serve`` process or a ``repro cluster`` coordinator, local or remote.
``docs/loadgen.md`` documents the metric definitions the swarm records.
"""

from __future__ import annotations

import asyncio
import time

from repro.loadgen.metrics import LatencyHistogram
from repro.loadgen.mix import MixSpec, PlannedRequest
from repro.loadgen.report import LoadReport
from repro.serve.client import ServeClient

__all__ = ["LoadSwarm"]

#: Upper bound on one request's full lifecycle before the swarm gives up on
#: it (counts as a failure; a hung server must not hang the harness).
REQUEST_TIMEOUT = 300.0


def _trace_fabric_section(stats: dict) -> dict:
    """The trace-fabric block of a report, from one ``RunStats`` wire dict.

    Distinguishes the three ways a request got its trace data: built in
    process, opened as a read-only mmap of a host-shared artifact, or reused
    from the session's in-memory store.
    """
    return {
        "traces_built": stats.get("traces_built", 0),
        "traces_reused": stats.get("traces_reused", 0),
        "tensors_built": stats.get("trace_tensors_built", 0),
        "mmap_opens": stats.get("traces_mapped", 0),
        "bytes_shared": stats.get("trace_bytes_shared", 0),
        "calibrations_computed": stats.get("trace_calibrations_computed", 0),
        "calibrations_loaded": stats.get("trace_calibrations_loaded", 0),
    }


class LoadSwarm:
    """Replay one :class:`MixSpec` schedule against a serve-protocol endpoint."""

    def __init__(
        self,
        mix: MixSpec,
        host: str,
        port: int,
        auth_token: str | None = None,
        target: str = "connect",
        request_timeout: float = REQUEST_TIMEOUT,
    ) -> None:
        self.mix = mix
        self.host = host
        self.port = port
        self.auth_token = auth_token
        self.target = target
        self.request_timeout = request_timeout

    # ----------------------------------------------------------------- requests
    async def _run_plain(self, client: ServeClient, planned: PlannedRequest, report: LoadReport):
        response = await client.job(dict(planned.message))
        return response.state, response.timings, response.coalesced, response.error

    async def _run_streamed(
        self, client: ServeClient, planned: PlannedRequest, report: LoadReport
    ):
        """Iterate a streamed job; cancel on the first event when flagged."""
        cancelled_by_us = False
        state, timings, coalesced, error = "failed", None, False, "no terminal event"
        async for event in client.stream(dict(planned.message)):
            name = event.get("event")
            if name == "progress":
                report.progress_events += 1
            if planned.cancel and not cancelled_by_us and event.get("ticket"):
                cancelled_by_us = True
                report.cancel_requested += 1
                await client.cancel(event["ticket"])
            if name in ("done", "failed", "cancelled", "error"):
                state = "failed" if name == "error" else name
                timings = event.get("timings")
                coalesced = bool(event.get("coalesced", False))
                error = event.get("error")
        return state, timings, coalesced, error

    async def _issue(
        self, client: ServeClient, planned: PlannedRequest, report: LoadReport
    ) -> None:
        if planned.think_seconds:
            await asyncio.sleep(planned.think_seconds)
        report.issued += 1
        if planned.hot:
            report.hot_issued += 1
        streamed = planned.stream or planned.cancel  # cancellation needs the event stream
        if streamed:
            report.streamed += 1
        started = time.perf_counter()
        try:
            runner = self._run_streamed if streamed else self._run_plain
            state, timings, coalesced, error = await asyncio.wait_for(
                runner(client, planned, report), timeout=self.request_timeout
            )
        except asyncio.TimeoutError:
            report.failed += 1
            report.errors.append(f"request {planned.index} timed out")
            return
        except (ConnectionError, OSError) as failure:
            report.failed += 1
            report.errors.append(f"request {planned.index}: {failure}")
            return
        elapsed = time.perf_counter() - started
        if coalesced:
            report.coalesced_tickets += 1
        if state == "done":
            report.done += 1
            report.latency.record(elapsed)
            # Coalesced tickets share a job and report that job's timings;
            # counting them once per ticket would double-count server work
            # (utilization above 100%), so timings are recorded per job.
            if timings and not coalesced:
                report.queue_wait.record(timings.get("queue_wait_seconds", 0.0))
                report.execution.record(timings.get("execution_seconds", 0.0))
        elif state == "cancelled":
            report.cancelled += 1
        else:
            report.failed += 1
            if error:
                report.errors.append(f"request {planned.index}: {error}")

    async def _client(self, client_index: int, schedule: list[PlannedRequest], report: LoadReport) -> None:
        """One simulated client: its own connection, its share of the schedule."""
        if self.mix.ramp_seconds:
            await asyncio.sleep(client_index * self.mix.ramp_seconds)
        own = [planned for planned in schedule if planned.client == client_index]
        if not own:
            return
        client = await ServeClient.connect(self.host, self.port, auth_token=self.auth_token)
        try:
            for planned in own:
                await self._issue(client, planned, report)
        finally:
            await client.close()

    # ---------------------------------------------------------------------- run
    async def run(self) -> LoadReport:
        """Replay the full schedule; returns the finished report."""
        report = LoadReport(
            target=self.target,
            mix=self.mix.to_dict(),
            duration_seconds=0.0,
            latency=LatencyHistogram(),
            queue_wait=LatencyHistogram(),
            execution=LatencyHistogram(),
        )
        schedule = self.mix.schedule()
        started = time.perf_counter()
        await asyncio.gather(
            *(self._client(index, schedule, report) for index in range(self.mix.clients))
        )
        report.duration_seconds = time.perf_counter() - started
        await self._capture_server_stats(report)
        return report

    async def _capture_server_stats(self, report: LoadReport) -> None:
        """Snapshot the server's stats op into the report (best effort)."""
        try:
            client = await ServeClient.connect(
                self.host, self.port, auth_token=self.auth_token
            )
        except (ConnectionError, OSError) as error:
            report.errors.append(f"stats capture failed: {error}")
            return
        try:
            stats = await asyncio.wait_for(client.stats(), timeout=30)
        except (asyncio.TimeoutError, ConnectionError, OSError) as error:
            report.errors.append(f"stats capture failed: {error}")
            return
        finally:
            await client.close()
        report.server_coalescing = stats.get("coalescing", {})
        report.server_queue = stats.get("queue", {})
        report.workers = stats.get("workers")
        report.trace_fabric = _trace_fabric_section(stats.get("stats", {}))
        cache = stats.get("cache") or {}
        if "remote_endpoint" in cache:
            # The target mounts a network cache tier (docs/cachenet.md):
            # surface the queried process's remote counters — for a cluster
            # that is the coordinator, whose planning probes make its
            # hit/miss/degraded totals track the whole run's tier health.
            report.remote_cache = {
                "endpoint": cache.get("remote_endpoint"),
                "reachable": cache.get("remote_reachable"),
                "backend": cache.get("backend"),
                "hits": cache.get("remote_hits", 0),
                "misses": cache.get("remote_misses", 0),
                "degraded": cache.get("remote_degraded", 0),
                "negative_entries": cache.get("negative_entries", 0),
                "suppressed_lookups": cache.get("suppressed_lookups", 0),
            }
        cluster = stats.get("cluster")
        if cluster:
            report.cluster_coalescing = cluster.get("coalescing")
            if cluster.get("fleet"):
                # Fabric work happens on the workers; the coordinator's own
                # counters are zero, so report the fleet-merged view.
                report.trace_fabric = _trace_fabric_section(cluster["fleet"])
            report.per_worker = [
                {
                    "worker": entry.get("worker"),
                    "dispatched": entry.get("dispatched", 0),
                    "completed": entry.get("completed", 0),
                    "alive": entry.get("alive"),
                }
                for entry in cluster.get("workers", [])
            ]
            # A cluster's capacity is the fleet, not the coordinator's pool.
            report.workers = len(report.per_worker) or report.workers
