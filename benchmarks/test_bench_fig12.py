"""Benchmark: regenerate Figure 12 (8-bit quantized representation)."""


def test_bench_fig12(report):
    result = report("fig12")
    geo = {key.split(":")[1]: value for key, value in result.metadata.items() if key.startswith("geomean:")}
    # Pragmatic's benefits persist with the quantized representation (paper: ~3.5x
    # for the column-synchronized PRA-2b); per-column beats per-pallet, and the
    # 2-bit first stage stays close to the single-stage design.
    assert geo["perPall-2bit"] > geo["Stripes"]
    assert geo["perCol-1reg-2bit"] > geo["perPall-2bit"]
    assert geo["perCol-1reg-2bit"] <= geo["perCol-ideal-2bit"] * 1.001
    assert 1.5 <= geo["perPall-2bit"] <= 3.5
    assert 2.0 <= geo["perCol-1reg-2bit"] <= 4.5
