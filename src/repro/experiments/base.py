"""Shared infrastructure of the experiment harness.

Every paper table and figure has a module in this package exposing
``run(preset, seed) -> ExperimentResult``.  The preset controls how much work
the reproduction does (trace sample sizes, pallets simulated per layer, which
networks are included) so the same experiment can serve quick benchmarks and
full reproduction runs.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.arch.tiling import SamplingConfig
from repro.nn.networks import NETWORK_NAMES

__all__ = [
    "Preset",
    "PRESETS",
    "get_preset",
    "ExperimentResult",
    "export_results",
    "parse_size",
    "parse_age",
]

#: Multipliers of byte-size suffixes (binary, case-insensitive).
_SIZE_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3}

#: Multipliers of duration suffixes.
_AGE_SUFFIXES = {"s": 1, "m": 60, "h": 3600, "d": 86400}


def parse_size(value: str) -> int:
    """``"500M"`` → bytes (plain integers and K/M/G suffixes).

    Shared argparse ``type=`` of every size-taking CLI flag (the batch CLI's
    ``--max-bytes``, the serve CLI's ``--gc-max-bytes``).
    """
    text = value.strip().lower()
    factor = 1
    if text and text[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        number = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a byte size like 1048576 or 500M, got {value!r}"
        ) from None
    if number < 0:
        raise argparse.ArgumentTypeError("byte size must be non-negative")
    return number * factor


def parse_age(value: str) -> float:
    """``"30d"`` → seconds (plain numbers and s/m/h/d suffixes).

    Shared argparse ``type=`` of every duration-taking CLI flag (the batch
    CLI's ``--max-age``, the serve CLI's ``--gc-interval``/``--gc-max-age``).
    """
    text = value.strip().lower()
    factor = 1
    if text and text[-1] in _AGE_SUFFIXES:
        factor = _AGE_SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        number = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an age like 3600, 90m or 30d, got {value!r}"
        ) from None
    if number < 0:
        raise argparse.ArgumentTypeError("age must be non-negative")
    return number * factor

#: Version of the exported-artifact JSON schema.
RESULT_SCHEMA = 1


@dataclass(frozen=True)
class Preset:
    """Workload size of an experiment run.

    Attributes
    ----------
    name:
        Preset identifier.
    networks:
        Networks to evaluate.
    samples_per_layer:
        Neuron values sampled per layer for the statistics passes.
    max_pallets:
        Pallets sampled per layer by the cycle simulator.
    seed:
        Default random seed (kept in the preset so benchmark runs are
        reproducible end to end).
    """

    name: str
    networks: tuple[str, ...] = NETWORK_NAMES
    samples_per_layer: int = 8000
    max_pallets: int = 6
    seed: int = 0

    def sampling(self) -> SamplingConfig:
        """Sampling configuration for the cycle simulators."""
        return SamplingConfig(max_pallets=self.max_pallets, seed=self.seed)


#: Named presets.  ``smoke`` exists for the test suite, ``fast`` for the
#: benchmark harness, ``full`` for a complete reproduction run.
PRESETS: dict[str, Preset] = {
    "smoke": Preset(name="smoke", networks=("alexnet", "vgg_m"), samples_per_layer=2000, max_pallets=2),
    "fast": Preset(name="fast", samples_per_layer=8000, max_pallets=6),
    "full": Preset(name="full", samples_per_layer=30000, max_pallets=24),
}


def get_preset(preset: str | Preset) -> Preset:
    """Resolve a preset by name (or pass a custom :class:`Preset` through)."""
    if isinstance(preset, Preset):
        return preset
    if preset not in PRESETS:
        raise KeyError(f"unknown preset {preset!r}; available: {', '.join(PRESETS)}")
    return PRESETS[preset]


@dataclass
class ExperimentResult:
    """The reproduced rows of one paper table or figure.

    Attributes
    ----------
    experiment:
        Short experiment id (``"fig9"``, ``"table3"`` …).
    title:
        Human readable title including the paper artifact it reproduces.
    headers:
        Column headers.
    rows:
        Table rows (lists of cells; strings or numbers).
    notes:
        Free-form notes: substitutions, known deviations, paper reference values.
    metadata:
        Machine-readable extras (e.g. geometric means) for tests and callers.
    """

    experiment: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: str = ""
    metadata: dict[str, float] = field(default_factory=dict)

    def to_text(self) -> str:
        """Render the experiment as readable text."""
        from repro.analysis.tables import format_table

        parts = [self.title, "", format_table(self.headers, self.rows)]
        if self.notes:
            parts.extend(["", self.notes])
        return "\n".join(parts)

    # ------------------------------------------------------------------ export
    def to_dict(self) -> dict:
        """Machine-readable rendering for downstream tooling."""
        return {
            "schema": RESULT_SCHEMA,
            "experiment": self.experiment,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": self.notes,
            "metadata": dict(self.metadata),
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Render the experiment as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output (artifact round trip)."""
        return cls(
            experiment=payload["experiment"],
            title=payload["title"],
            headers=list(payload["headers"]),
            rows=[list(row) for row in payload["rows"]],
            notes=payload.get("notes", ""),
            metadata=dict(payload.get("metadata", {})),
        )


def export_results(results: dict[str, ExperimentResult], out_dir: str | Path) -> list[Path]:
    """Write one ``<experiment>.json`` artifact per result; returns the paths."""
    directory = Path(out_dir).expanduser()
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for name, result in results.items():
        path = directory / f"{name}.json"
        path.write_text(result.to_json() + "\n", encoding="utf-8")
        paths.append(path)
    return paths
