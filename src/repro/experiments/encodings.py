"""Encoding comparison — every registered oneffset encoding as a workload.

The paper's conclusion notes that Pragmatic applies to any explicit
power-of-two representation of the neurons.  This experiment runs the full
cycle simulation — not just term counting — for the baseline PRA-2b design
point under every encoding registered in :mod:`repro.numerics.encodings`
(positional, CSD, HESE term-pairing, and the binarized 1-bit workload),
reporting each encoding's speedup over DaDianNao and its serial-term traffic
relative to the positional encoding.

``positional`` is numerically identical to the plain PRA-2b point of
Figure 9.  ``binary`` is the degenerate case: its traces are lossy (every
non-zero magnitude collapses to one term), so essential-term skipping reduces
to zero-skipping and the reported speedup is an upper bound for binarized
networks, not a drop-in design point.
"""

from __future__ import annotations

from repro.analysis.speedup import geometric_mean
from repro.analysis.tables import format_percent, format_ratio
from repro.core.variants import encoding_variants
from repro.experiments.base import ExperimentResult, Preset, get_preset
from repro.numerics.encodings import encoding_names
from repro.runtime import SimulationRequest, TraceSpec, current_session, simulate

__all__ = ["run", "plan"]


def plan(preset: str | Preset = "fast", seed: int = 0) -> list[SimulationRequest]:
    """The cycle simulations this experiment needs (one job per network)."""
    config = get_preset(preset)
    variants = tuple(encoding_variants().items())
    return [
        SimulationRequest(
            trace=TraceSpec(network=name, seed=seed),
            configs=variants,
            sampling=config.sampling(),
        )
        for name in config.networks
    ]


def run(preset: str | Preset = "fast", seed: int = 0) -> ExperimentResult:
    """Speedup and relative term traffic of PRA-2b under every encoding."""
    config = get_preset(preset)
    names = list(encoding_names())
    headers = ["network", *names, *[f"{name} terms" for name in names[1:]]]
    rows: list[list[object]] = []
    metadata: dict[str, float] = {}
    speedups: dict[str, list[float]] = {name: [] for name in names}

    for request in plan(config, seed):
        results = simulate(request)
        trace = current_session().trace(request.trace)
        network_name = trace.network.name
        row: list[object] = [network_name]
        positional_terms = sum(
            layer.terms for layer in results["positional"].layers
        )
        for name in names:
            speedup = results[name].speedup
            row.append(format_ratio(speedup))
            speedups[name].append(speedup)
            metadata[f"{network_name}:{name}"] = speedup
        for name in names[1:]:
            terms = sum(layer.terms for layer in results[name].layers)
            relative = terms / positional_terms if positional_terms else 0.0
            row.append(format_percent(relative))
            metadata[f"{network_name}:{name}:terms"] = relative
        rows.append(row)

    geomeans = {name: geometric_mean(values) for name, values in speedups.items()}
    rows.append(
        ["geomean", *[format_ratio(geomeans[name]) for name in names]]
        + [""] * (len(names) - 1)
    )
    for name, value in geomeans.items():
        metadata[f"geomean:{name}"] = value
    notes = (
        "Full cycle simulation of PRA-2b (per-pallet sync) under every registered\n"
        "oneffset encoding; 'X terms' columns are serial term traffic relative to\n"
        "the positional encoding.  positional matches Figure 9's PRA-2b exactly.\n"
        "binary is the degenerate 1-bit case: its traces are lossy (non-zero\n"
        "magnitudes collapse to a single term), so term skipping reduces to\n"
        "zero-skipping and the speedup bounds binarized-network traffic rather\n"
        "than modelling a drop-in design point."
    )
    return ExperimentResult(
        experiment="encodings",
        title="Encoding comparison: PRA-2b across registered oneffset encodings",
        headers=headers,
        rows=rows,
        notes=notes,
        metadata=metadata,
    )
