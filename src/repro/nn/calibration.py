"""Calibration of the synthetic traces against the paper's Table I statistics.

Table I of the paper reports, per network, the average fraction of non-zero bits
per neuron for the two storage representations the evaluation uses — 16-bit
fixed point and 8-bit TensorFlow-style quantization — over all neurons ("All")
and over non-zero neurons only ("NZ").  Those two numbers pin down the two free
parameters of the synthetic trace generator:

* the zero fraction ``z`` follows from ``All = (1 - z) * NZ``, and
* the magnitude scale multiplier ``alpha`` (the half-normal scale expressed as a
  fraction of ``2**msb`` of each layer's bit window) is found by bisection so
  that the simulated NZ essential-bit fraction matches the published value.

The calibrated parameters are what every experiment uses by default, so the
reproduction's inputs carry the same bit statistics the original evaluation saw.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from repro.numerics.fixedpoint import popcount
from repro.nn.networks import Network, get_network
from repro.nn.precision import DEFAULT_SUFFIX_BITS, LayerPrecision, precision_profile
from repro.nn.traces import (
    DEFAULT_SHAPE,
    LayerTraceParams,
    NetworkTrace,
    generate_layer_values,
)

__all__ = [
    "TABLE1_TARGETS",
    "REPRESENTATIONS",
    "NetworkCalibration",
    "calibrate_network",
    "calibrated_trace",
    "storage_bits_for",
]

#: Storage representations the paper evaluates.
REPRESENTATIONS = ("fixed16", "quant8")

#: Table I of the paper: average fraction of non-zero bits per neuron.
#: Keys: representation -> statistic ("all" / "nz") -> network -> fraction.
TABLE1_TARGETS: dict[str, dict[str, dict[str, float]]] = {
    "fixed16": {
        "all": {
            "alexnet": 0.078,
            "nin": 0.104,
            "googlenet": 0.064,
            "vgg_m": 0.051,
            "vgg_s": 0.057,
            "vgg19": 0.127,
        },
        "nz": {
            "alexnet": 0.181,
            "nin": 0.221,
            "googlenet": 0.190,
            "vgg_m": 0.165,
            "vgg_s": 0.167,
            "vgg19": 0.242,
        },
    },
    "quant8": {
        "all": {
            "alexnet": 0.314,
            "nin": 0.271,
            "googlenet": 0.268,
            "vgg_m": 0.384,
            "vgg_s": 0.343,
            "vgg19": 0.165,
        },
        "nz": {
            "alexnet": 0.443,
            "nin": 0.374,
            "googlenet": 0.426,
            "vgg_m": 0.474,
            "vgg_s": 0.460,
            "vgg19": 0.291,
        },
    },
}


#: Maximum magnitude of the image feeding the first convolutional layer.  That
#: layer consumes the image itself (8-bit pixels, not ReLU outputs), so its
#: neuron stream is dense and carries roughly half of 8 bits of essential
#: content — the reason Cnvlutin cannot skip zeros there (Section II).  The
#: first layer also dominates the DaDN cycle count of several networks (few
#: channels, many windows), so modelling it as dense pixels is what keeps the
#: reproduced speedups aligned with the paper (see the ablation experiment).
IMAGE_LAYER_MAX = 255.0


def _image_layer_params(storage_bits: int) -> LayerTraceParams:
    """Trace parameters of the dense, uniformly distributed image-pixel layer."""
    return LayerTraceParams(
        sigma=IMAGE_LAYER_MAX,
        zero_fraction=0.0,
        max_magnitude=(1 << storage_bits) - 1,
        distribution="uniform",
    )


def storage_bits_for(representation: str) -> int:
    """Storage width of a representation name."""
    if representation == "fixed16":
        return 16
    if representation == "quant8":
        return 8
    raise ValueError(f"unknown representation {representation!r}; expected one of {REPRESENTATIONS}")


@dataclass(frozen=True)
class NetworkCalibration:
    """Calibrated synthetic-trace parameters for one network and representation.

    Attributes
    ----------
    network:
        Network name.
    representation:
        ``"fixed16"`` or ``"quant8"``.
    alpha:
        Half-normal scale as a fraction of ``2**msb`` of each layer's bit window.
    zero_fraction:
        Fraction of exactly-zero neurons.
    target_nz_fraction:
        The Table I NZ essential-bit fraction the calibration aimed for.
    achieved_nz_fraction:
        The fraction the calibrated generator actually produces (measured on the
        calibration sample).
    """

    network: str
    representation: str
    alpha: float
    zero_fraction: float
    target_nz_fraction: float
    achieved_nz_fraction: float


def _generation_windows(
    network: Network, representation: str, suffix_bits: int
) -> tuple[LayerPrecision, ...]:
    """Bit windows the value generator scales magnitudes to.

    For the 16-bit fixed-point representation the window is the layer's profiled
    precision placed above ``suffix_bits`` fractional bits.  For the 8-bit
    quantized representation the per-layer min/max quantization spreads codes
    over the full 8-bit range, so the window is always ``[0, 7]``.
    """
    if representation == "fixed16":
        return precision_profile(network, suffix_bits=suffix_bits)
    if representation == "quant8":
        return tuple(LayerPrecision(msb=7, lsb=0) for _ in network.layers)
    raise ValueError(f"unknown representation {representation!r}")


def _layer_sigma(window: LayerPrecision, alpha: float) -> float:
    """Magnitude scale for a layer: ``alpha`` of the top of its bit window."""
    return max(alpha * float(2**window.msb), 0.5)


def _layer_shape(representation: str) -> float:
    """Lognormal shape (log-space spread) of the non-zero magnitudes.

    Fixed-point activations keep the heavy tail of the underlying real values.
    The 8-bit min/max quantization, by contrast, sets its scale from the layer's
    extreme activations, which concentrates the bulk of the codes well below the
    top of the range — modelled as a lighter-tailed code distribution.
    """
    return DEFAULT_SHAPE if representation == "fixed16" else 0.8


def _nz_bit_fraction(
    network: Network,
    windows: tuple[LayerPrecision, ...],
    alpha: float,
    storage_bits: int,
    samples_per_layer: int,
    seed: int,
    fixed_params: dict[int, LayerTraceParams] | None = None,
    shape: float = DEFAULT_SHAPE,
) -> float:
    """Stream-weighted essential-bit fraction of non-zero neurons for a given alpha.

    ``fixed_params`` pins the distribution of specific layers (the dense
    image-fed first layer) so that the bisection only adjusts the remaining,
    ReLU-fed layers.
    """
    weights = np.array(
        [layer.neuron_stream_length() for layer in network.layers], dtype=np.float64
    )
    fractions = np.empty(network.num_layers, dtype=np.float64)
    max_magnitude = (1 << storage_bits) - 1
    fixed_params = fixed_params or {}
    for index, window in enumerate(windows):
        rng = np.random.default_rng((seed, index))
        params = fixed_params.get(
            index,
            LayerTraceParams(
                sigma=_layer_sigma(window, alpha),
                zero_fraction=0.0,
                max_magnitude=max_magnitude,
                shape=shape,
            ),
        )
        values = generate_layer_values((samples_per_layer,), params, rng)
        fractions[index] = popcount(values, bits=storage_bits).mean() / storage_bits
    return float(np.average(fractions, weights=weights))


@functools.lru_cache(maxsize=128)
def calibrate_network(
    network_name: str,
    representation: str = "fixed16",
    suffix_bits: int = DEFAULT_SUFFIX_BITS,
    samples_per_layer: int = 8192,
    seed: int = 12345,
    dense_first_layer: bool = True,
) -> NetworkCalibration:
    """Find trace parameters that reproduce the network's Table I statistics.

    The NZ essential-bit fraction is monotone in the magnitude scale, so a plain
    bisection on ``alpha`` converges quickly.  Results are cached per argument
    combination; calibration is deterministic.

    With ``dense_first_layer`` the first layer's scale is pinned to the
    image-pixel distribution and only the remaining (ReLU-fed) layers are
    adjusted, mirroring the real neuron streams.
    """
    network = get_network(network_name)
    storage_bits = storage_bits_for(representation)
    targets = TABLE1_TARGETS[representation]
    if network.name not in targets["nz"]:
        raise KeyError(f"no Table I target for network {network.name!r}")
    target_nz = targets["nz"][network.name]
    target_all = targets["all"][network.name]
    zero_fraction = float(np.clip(1.0 - target_all / target_nz, 0.0, 0.99))

    windows = _generation_windows(network, representation, suffix_bits)
    fixed_params = {0: _image_layer_params(storage_bits)} if dense_first_layer else {}

    low, high = 1e-4, 4.0
    evaluate = functools.partial(
        _nz_bit_fraction,
        network,
        windows,
        storage_bits=storage_bits,
        samples_per_layer=samples_per_layer,
        seed=seed,
        fixed_params=fixed_params,
        shape=_layer_shape(representation),
    )
    achieved = evaluate(high)
    if achieved < target_nz:
        # Even the widest scale cannot reach the target (should not happen for the
        # published targets); fall back to the widest scale.
        return NetworkCalibration(
            network=network.name,
            representation=representation,
            alpha=high,
            zero_fraction=zero_fraction,
            target_nz_fraction=target_nz,
            achieved_nz_fraction=achieved,
        )
    if evaluate(low) > target_nz:
        # The pinned first layer alone exceeds the target; use the smallest scale
        # for the remaining layers.
        alpha = low
        achieved = evaluate(low)
    else:
        for _ in range(40):
            mid = 0.5 * (low + high)
            achieved = evaluate(mid)
            if achieved < target_nz:
                low = mid
            else:
                high = mid
        alpha = 0.5 * (low + high)
        achieved = evaluate(alpha)
    return NetworkCalibration(
        network=network.name,
        representation=representation,
        alpha=alpha,
        zero_fraction=zero_fraction,
        target_nz_fraction=target_nz,
        achieved_nz_fraction=achieved,
    )


def calibrated_trace(
    network: str | Network,
    representation: str = "fixed16",
    suffix_bits: int = DEFAULT_SUFFIX_BITS,
    seed: int = 0,
    precisions: tuple[int, ...] | None = None,
    dense_first_layer: bool = True,
    calibration: NetworkCalibration | None = None,
) -> NetworkTrace:
    """Build a :class:`NetworkTrace` whose bit statistics match Table I.

    Parameters
    ----------
    network:
        Network name or object.
    representation:
        ``"fixed16"`` (default) or ``"quant8"``.
    suffix_bits:
        Fractional bits stored below the precision window (16-bit fixed point
        only; trimmed by software guidance).
    seed:
        Seed of the generated trace (calibration uses its own fixed seed).
    precisions:
        Optional per-layer precision widths overriding Table II (16-bit fixed
        point only).
    dense_first_layer:
        Model the first layer's input as dense image pixels rather than sparse
        ReLU outputs (the realistic default).
    calibration:
        A pre-computed :class:`NetworkCalibration` (e.g. one persisted by the
        trace fabric, :mod:`repro.runtime.trace_cache`) — skips the bisection
        entirely.  Must describe the same network/representation arguments;
        ``None`` runs (or memo-hits) :func:`calibrate_network`.
    """
    net = network if isinstance(network, Network) else get_network(network)
    storage_bits = storage_bits_for(representation)
    if calibration is None:
        calibration = calibrate_network(
            net.name,
            representation=representation,
            suffix_bits=suffix_bits,
            dense_first_layer=dense_first_layer,
        )
    elif calibration.network != net.name or calibration.representation != representation:
        raise ValueError(
            f"calibration describes {calibration.network}/{calibration.representation}, "
            f"not {net.name}/{representation}"
        )
    if representation == "fixed16":
        profile = precision_profile(net, suffix_bits=suffix_bits, precisions=precisions)
    else:
        if precisions is not None:
            raise ValueError("explicit precisions only apply to the fixed16 representation")
        profile = _generation_windows(net, representation, suffix_bits)
    windows = _generation_windows(net, representation, suffix_bits)
    max_magnitude = (1 << storage_bits) - 1
    params = []
    for index, window in enumerate(windows):
        if dense_first_layer and index == 0:
            params.append(_image_layer_params(storage_bits))
        else:
            params.append(
                LayerTraceParams(
                    sigma=_layer_sigma(window, calibration.alpha),
                    zero_fraction=calibration.zero_fraction,
                    max_magnitude=max_magnitude,
                    shape=_layer_shape(representation),
                )
            )
    return NetworkTrace(
        network=net,
        precisions=profile,
        params=params_tuple(params),
        seed=seed,
        storage_bits=storage_bits,
    )


def params_tuple(params: list[LayerTraceParams]) -> tuple[LayerTraceParams, ...]:
    """Freeze a parameter list (kept as a helper for readability)."""
    return tuple(params)
