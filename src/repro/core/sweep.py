"""Efficient design-space sweeps over Pragmatic configurations.

The paper's figures evaluate many configurations over the same traces.  The
expensive part of the cycle simulation — computing per-column drain cycles from
the neuron term planes — only depends on the first-stage shifter width, on
whether software trimming is applied and on the oneffset encoding, not on the
synchronization scheme or the SSR count.  :func:`sweep_network` therefore
samples each layer's pallets once, plans every
``(first_stage_bits, software_trimming, encoding)`` drain group of the layer
up front, and dispatches them through the batched drain kernel
(:mod:`repro.core.kernels`): the trimmed neuron values are packed once per
``(trimming, encoding)`` pair and all first-stage reaches are evaluated over
that packed tensor in one call.  Every requested configuration's cycle count is then
derived from its group's drains, producing **bit-identical** results to
:class:`repro.core.accelerator.PragmaticAccelerator` at a fraction of the cost
(the golden suite in ``tests/test_core_kernels.py`` asserts exact equality).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.memory import NeuronMemory
from repro.arch.tiling import SamplingConfig, sample_pallet_values
from repro.baselines.dadiannao import DaDianNaoModel
from repro.core.accelerator import LayerResult, NetworkResult, PragmaticConfig
from repro.core.kernels import batched_drain_cycles, packed_essential_terms
from repro.core.progress import ProgressToken, SweepCancelled
from repro.core.scheduling import encoded_drain_masks, ssr_pipeline_cycles
from repro.core.software import SoftwareGuidance
from repro.nn.traces import NetworkTrace

__all__ = [
    "ProgressToken",
    "SweepCancelled",
    "SweepStats",
    "sweep_network",
    "cycles_from_drain",
]


@dataclass
class SweepStats:
    """Counters of the work a sweep actually performed.

    The runtime layer passes one instance through every sweep of a session so
    run summaries can state exactly how much cycle simulation was recomputed
    (a warm-cache run reports zero on both counters).
    """

    configs_simulated: int = 0
    drain_groups_computed: int = 0

    def merge(self, other: "SweepStats | dict") -> None:
        """Accumulate counters from another stats object (or its dict form)."""
        if isinstance(other, SweepStats):
            other = other.as_dict()
        self.configs_simulated += other.get("configs_simulated", 0)
        self.drain_groups_computed += other.get("drain_groups_computed", 0)

    def as_dict(self) -> dict[str, int]:
        return {
            "configs_simulated": self.configs_simulated,
            "drain_groups_computed": self.drain_groups_computed,
        }


def cycles_from_drain(
    drain: np.ndarray,
    config: PragmaticConfig,
    min_step_cycles: int,
    sb_read_cycles: int = 1,
) -> np.ndarray:
    """Per-pallet cycles from precomputed drain counts ``[pallets, steps, windows]``."""
    clamped = np.maximum(drain, min_step_cycles)
    if config.synchronization == "pallet":
        return clamped.max(axis=2).sum(axis=1)
    return ssr_pipeline_cycles(clamped, config.ssr_count, sb_read_cycles=sb_read_cycles)


@dataclass
class _DrainGroup:
    """Drain tensors shared by all configurations with the same bit behaviour."""

    drain: np.ndarray
    terms: float


def sweep_network(
    trace: NetworkTrace,
    configs: dict[str, PragmaticConfig],
    sampling: SamplingConfig = SamplingConfig(),
    stats: SweepStats | None = None,
    progress: ProgressToken | None = None,
) -> dict[str, NetworkResult]:
    """Simulate every configuration over one traced network.

    Parameters
    ----------
    trace:
        Calibrated activation trace.
    configs:
        Mapping of result label to configuration.  All configurations must share
        the same chip structure (they do for every paper experiment).
    sampling:
        Pallet sampling configuration.
    stats:
        Optional :class:`SweepStats` accumulating how much simulation work the
        sweep performed (used by :mod:`repro.runtime` run summaries).
    progress:
        Optional :class:`ProgressToken`.  The sweep checks it at cooperative
        checkpoints — between layers and between drain groups, never inside a
        unit of work — raising :class:`SweepCancelled` once cancellation has
        been requested, and emits one ``"layer"`` progress event per completed
        layer.

    Returns
    -------
    dict
        Label → :class:`NetworkResult`, numerically identical to running each
        configuration through :class:`PragmaticAccelerator` with the same
        sampling seed.
    """
    if not configs:
        raise ValueError("configs must not be empty")
    if progress is not None:
        progress.checkpoint()
    chips = {config.chip for config in configs.values()}
    if len(chips) != 1:
        raise ValueError("all configurations in one sweep must share the same chip")
    chip = next(iter(chips))
    baseline = DaDianNaoModel(chip)
    memory = NeuronMemory(chip)

    per_config_layers: dict[str, list[LayerResult]] = {label: [] for label in configs}
    storage_bits = trace.storage_bits
    if stats is not None:
        stats.configs_simulated += len(configs)

    num_layers = trace.network.num_layers
    for layer_index in range(num_layers):
        if progress is not None:
            progress.checkpoint()
        layer = trace.layer(layer_index)
        values, total_pallets = sample_pallet_values(trace, layer_index, sampling)
        min_step = max(1, memory.pallet_fetch_cycles(layer))
        passes = layer.filter_passes(chip.filters_per_cycle)
        baseline_cycles = float(baseline.layer_cycles(layer))
        baseline_terms = float(baseline.layer_terms(layer, storage_bits))

        # Plan every (first_stage_bits, software_trimming, encoding) drain
        # group of the layer up front, then dispatch one batched kernel call
        # per (trimming, encoding) pair: the packed term masks and per-column
        # statistics are shared by all first-stage reaches of that pair.
        group_keys: list[tuple[int, bool, str]] = []
        for config in configs.values():
            key = (config.first_stage_bits, config.software_trimming, config.encoding)
            if key not in group_keys:
                group_keys.append(key)
        groups: dict[tuple[int, bool, str], _DrainGroup] = {}
        for trimming, encoding in dict.fromkeys(key[1:] for key in group_keys):
            if progress is not None:
                progress.checkpoint()
            flag_keys = [key for key in group_keys if key[1:] == (trimming, encoding)]
            guidance = SoftwareGuidance.from_trace(trace, enabled=trimming)
            trimmed = guidance.apply(values, layer_index)
            masks = encoded_drain_masks(trimmed, storage_bits, encoding)
            drains = batched_drain_cycles(
                masks, [1 << bits for bits, _, _ in flag_keys]
            )
            terms_per_neuron = packed_essential_terms(masks) / max(1, trimmed.size)
            if stats is not None:
                stats.drain_groups_computed += len(flag_keys)
            for slot, key in enumerate(flag_keys):
                groups[key] = _DrainGroup(
                    drain=drains[slot], terms=terms_per_neuron * layer.macs
                )

        for label, config in configs.items():
            group = groups[
                (config.first_stage_bits, config.software_trimming, config.encoding)
            ]
            per_pallet = cycles_from_drain(group.drain, config, min_step)
            cycles = float(per_pallet.mean()) * total_pallets * passes
            per_config_layers[label].append(
                LayerResult(
                    layer_name=layer.name,
                    cycles=cycles,
                    baseline_cycles=baseline_cycles,
                    terms=group.terms,
                    baseline_terms=baseline_terms,
                )
            )
        if progress is not None:
            progress.emit(
                {
                    "stage": "layer",
                    "network": trace.network.name,
                    "layer": layer.name,
                    "index": layer_index,
                    "layers": num_layers,
                }
            )

    return {
        label: NetworkResult(
            network=trace.network.name,
            accelerator=configs[label].name,
            layers=tuple(layers),
        )
        for label, layers in per_config_layers.items()
    }
