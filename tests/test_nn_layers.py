"""Unit tests for convolutional layer geometry."""

import pytest

from repro.nn.layers import BRICK_SIZE, PALLET_WINDOWS, ConvLayerSpec


def make_layer(**overrides):
    defaults = dict(
        name="layer",
        input_channels=64,
        input_height=28,
        input_width=28,
        num_filters=128,
        filter_height=3,
        filter_width=3,
        stride=1,
        padding=1,
    )
    defaults.update(overrides)
    return ConvLayerSpec(**defaults)


class TestGeometry:
    def test_constants(self):
        assert BRICK_SIZE == 16
        assert PALLET_WINDOWS == 16

    def test_output_dims_with_padding(self):
        layer = make_layer()
        assert layer.output_height == 28
        assert layer.output_width == 28

    def test_output_dims_with_stride(self):
        layer = make_layer(stride=2, padding=0, input_height=11, input_width=11)
        assert layer.output_height == 5
        assert layer.output_width == 5

    def test_alexnet_conv1_dimensions(self):
        layer = ConvLayerSpec("conv1", 3, 227, 227, 96, 11, 11, stride=4)
        assert layer.output_height == 55
        assert layer.output_width == 55

    def test_num_windows(self):
        layer = make_layer()
        assert layer.num_windows == 28 * 28

    def test_synapse_counts(self):
        layer = make_layer()
        assert layer.synapses_per_filter == 3 * 3 * 64
        assert layer.total_synapses == 3 * 3 * 64 * 128

    def test_mac_count(self):
        layer = make_layer()
        assert layer.macs == 28 * 28 * 128 * 3 * 3 * 64

    def test_neuron_counts(self):
        layer = make_layer()
        assert layer.input_neurons == 64 * 28 * 28
        assert layer.output_neurons == 128 * 28 * 28

    def test_channel_bricks_rounds_up(self):
        assert make_layer(input_channels=3).channel_bricks == 1
        assert make_layer(input_channels=16).channel_bricks == 1
        assert make_layer(input_channels=17).channel_bricks == 2

    def test_bricks_per_window(self):
        layer = make_layer(input_channels=48)
        assert layer.bricks_per_window == 3 * 3 * 3

    def test_window_groups_rounds_up(self):
        layer = make_layer(input_height=5, input_width=5, padding=0, filter_height=3, filter_width=3)
        assert layer.num_windows == 9
        assert layer.window_groups == 1
        wide = make_layer()
        assert wide.window_groups == -(-wide.num_windows // 16)

    def test_filter_passes(self):
        layer = make_layer(num_filters=96)
        assert layer.filter_passes(256) == 1
        assert layer.filter_passes(64) == 2

    def test_filter_passes_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            make_layer().filter_passes(0)

    def test_neuron_stream_length_independent_of_filter_count(self):
        a = make_layer(num_filters=64)
        b = make_layer(num_filters=512)
        assert a.neuron_stream_length() == b.neuron_stream_length()

    def test_describe_mentions_name_and_shape(self):
        text = make_layer().describe()
        assert "layer" in text
        assert "128 filters" in text


class TestValidation:
    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            make_layer(input_channels=0)
        with pytest.raises(ValueError):
            make_layer(stride=0)

    def test_rejects_negative_padding(self):
        with pytest.raises(ValueError):
            make_layer(padding=-1)

    def test_rejects_filter_larger_than_input(self):
        with pytest.raises(ValueError):
            make_layer(input_height=2, input_width=2, padding=0)
