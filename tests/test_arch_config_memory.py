"""Unit tests for the chip configuration and memory models."""

import pytest

from repro.arch.config import DEFAULT_CHIP, ChipConfig
from repro.arch.memory import AccessCounters, NeuronMemory, SynapseBuffer, layer_fits_on_chip
from repro.nn.layers import ConvLayerSpec
from repro.nn.networks import get_network


class TestChipConfig:
    def test_default_matches_dadiannao(self):
        assert DEFAULT_CHIP.tiles == 16
        assert DEFAULT_CHIP.filters_per_cycle == 256
        assert DEFAULT_CHIP.synapses_per_cycle == 4096

    def test_terms_per_cycle(self):
        assert DEFAULT_CHIP.bit_parallel_terms_per_cycle == 4096 * 16
        assert DEFAULT_CHIP.serial_terms_per_cycle == 4096 * 16

    def test_neuron_bytes(self):
        assert DEFAULT_CHIP.neuron_bytes == 2
        assert ChipConfig(storage_bits=8).neuron_bytes == 1

    def test_rejects_invalid_values(self):
        with pytest.raises(ValueError):
            ChipConfig(tiles=0)
        with pytest.raises(ValueError):
            ChipConfig(frequency_ghz=0.0)

    def test_config_is_hashable(self):
        assert len({DEFAULT_CHIP, ChipConfig()}) == 1


class TestNeuronMemory:
    def test_unit_stride_fetches_in_one_cycle(self):
        layer = ConvLayerSpec("l", 64, 28, 28, 64, 3, 3, stride=1, padding=1)
        assert NeuronMemory().pallet_fetch_cycles(layer) == 1

    def test_larger_stride_needs_more_cycles(self):
        base = ConvLayerSpec("l1", 64, 28, 28, 64, 3, 3, stride=1, padding=1)
        strided = ConvLayerSpec("l4", 3, 227, 227, 96, 11, 11, stride=4)
        memory = NeuronMemory()
        assert memory.pallet_fetch_cycles(strided) > memory.pallet_fetch_cycles(base)

    def test_fetch_cycles_capped_at_pallet_width(self):
        layer = ConvLayerSpec("wide", 16, 300, 300, 4, 3, 3, stride=16)
        assert NeuronMemory().pallet_fetch_cycles(layer) <= 16

    def test_footprint_and_fits(self):
        memory = NeuronMemory()
        small = ConvLayerSpec("s", 16, 8, 8, 4, 3, 3, padding=1)
        assert memory.fits(small)
        assert memory.layer_footprint_bytes(small) == 16 * 8 * 8 * 2

    def test_alexnet_and_nin_layers_fit_in_nm(self):
        memory = NeuronMemory()
        for name in ("alexnet", "nin"):
            for layer in get_network(name).layers:
                assert memory.fits(layer), layer.name

    def test_vgg19_early_layers_overflow_nm(self):
        # The 4 MB neuron memory cannot hold VGG-19's 64x224x224 activations; the
        # capacity check must flag that rather than silently mis-model it.
        assert not NeuronMemory().fits(get_network("vgg19").layer("conv1_2"))


class TestSynapseBuffer:
    def test_footprint_counts_one_filter_pass(self):
        buffer = SynapseBuffer()
        layer = ConvLayerSpec("l", 256, 14, 14, 512, 3, 3, padding=1)
        assert buffer.layer_footprint_bytes(layer) == 16 * 256 * 9 * 2

    def test_paper_layers_fit_in_sb(self):
        buffer = SynapseBuffer()
        for layer in get_network("vgg19").layers:
            assert buffer.fits(layer), layer.name

    def test_layer_reads_scale_with_window_groups(self):
        buffer = SynapseBuffer()
        layer = ConvLayerSpec("l", 64, 28, 28, 64, 3, 3, padding=1)
        assert buffer.layer_reads(layer) == layer.window_groups * layer.bricks_per_window

    def test_layer_fits_on_chip(self):
        layer = ConvLayerSpec("l", 64, 28, 28, 64, 3, 3, padding=1)
        assert layer_fits_on_chip(layer)


class TestAccessCounters:
    def test_merge_adds_counters(self):
        a = AccessCounters(nm_reads=1, sb_reads=2)
        b = AccessCounters(nm_reads=3, nbout_writes=4)
        merged = a.merge(b)
        assert merged.nm_reads == 4
        assert merged.sb_reads == 2
        assert merged.nbout_writes == 4
