"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper table or figure through the experiment
harness, measures how long the reproduction takes (one round — these are
simulations, not micro-kernels), asserts the qualitative claims the paper makes
about that artifact, and writes the reproduced rows to
``benchmarks/reports/<experiment>.txt`` so the output survives the run.

Every measured run executes inside an isolated runtime session so the shared
result cache of :mod:`repro.runtime` cannot let one benchmark reuse another's
simulations — each benchmark pays the full cost of its own reproduction.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import run_experiment
from repro.runtime import isolated_session

#: Directory the benchmark reports are written to.
REPORTS_DIR = Path(__file__).parent / "reports"

#: Machine-readable per-experiment wall times, merged across benchmark runs
#: so the performance trajectory is trackable across PRs.
SUMMARY_PATH = REPORTS_DIR / "bench_summary.json"

#: Schema version of ``bench_summary.json``.
SUMMARY_SCHEMA = 1

#: Preset used by every benchmark run.
BENCHMARK_PRESET = "fast"


def _run_isolated(experiment: str, preset: str) -> ExperimentResult:
    """Run one experiment in a fresh runtime session (no cross-benchmark reuse)."""
    with isolated_session():
        return run_experiment(experiment, preset=preset)


def record_summary(experiment: str, preset: str, wall_seconds: float) -> None:
    """Merge one measurement into ``bench_summary.json`` (atomic enough for CI).

    The file maps experiment id → its latest measurement; a corrupted or
    missing summary is simply restarted, never fatal to the benchmark.
    """
    summary = {"schema": SUMMARY_SCHEMA, "experiments": {}}
    try:
        loaded = json.loads(SUMMARY_PATH.read_text(encoding="utf-8"))
        if loaded.get("schema") == SUMMARY_SCHEMA and isinstance(
            loaded.get("experiments"), dict
        ):
            summary = loaded
    except (OSError, ValueError):
        pass
    summary["experiments"][experiment] = {
        "preset": preset,
        "wall_seconds": round(wall_seconds, 3),
    }
    SUMMARY_PATH.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def run_and_report(benchmark, experiment: str, preset: str = BENCHMARK_PRESET) -> ExperimentResult:
    """Run one experiment under pytest-benchmark and persist its report."""
    durations: list[float] = []

    def timed(experiment: str, preset: str) -> ExperimentResult:
        started = time.perf_counter()
        result = _run_isolated(experiment, preset)
        durations.append(time.perf_counter() - started)
        return result

    result = benchmark.pedantic(
        timed, args=(experiment, preset), rounds=1, iterations=1
    )
    REPORTS_DIR.mkdir(exist_ok=True)
    (REPORTS_DIR / f"{experiment}.txt").write_text(result.to_text() + "\n")
    record_summary(experiment, preset, durations[-1])
    return result


@pytest.fixture
def report(benchmark):
    """Fixture exposing :func:`run_and_report` bound to the active benchmark."""

    def runner(experiment: str, preset: str = BENCHMARK_PRESET) -> ExperimentResult:
        return run_and_report(benchmark, experiment, preset)

    return runner
