"""Unit tests for the 2-stage shifting decomposition and serial term scheduling."""

import pytest

from repro.numerics.encoding import (
    schedule_cycle_count,
    serial_term_schedule,
    two_stage_decompose,
)
from repro.numerics.oneffsets import encode_oneffsets


class TestTwoStageDecompose:
    def test_common_is_minimum(self):
        common, per_offset = two_stage_decompose([3, 5, 4], first_stage_bits=2)
        assert common == 3
        assert per_offset == [0, 2, 1]

    def test_offsets_beyond_reach_stall(self):
        common, per_offset = two_stage_decompose([0, 4], first_stage_bits=2)
        assert common == 0
        assert per_offset == [0, None]

    def test_zero_first_stage_bits_only_processes_minimum(self):
        common, per_offset = two_stage_decompose([1, 2], first_stage_bits=0)
        assert common == 1
        assert per_offset == [0, None]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            two_stage_decompose([], first_stage_bits=2)

    def test_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            two_stage_decompose([1], first_stage_bits=-1)


class TestSerialTermSchedule:
    def test_figure7_style_example_takes_four_cycles(self):
        # Figure 7b of the paper: with L = 2 the control picks the minimum
        # outstanding oneffset each cycle ((1,0,4) then (6,7,4) …) and the group
        # drains in four cycles because the third neuron's high oneffsets trail.
        oneffsets = [[1, 6, 7], [0, 7], [4, 8, 10]]
        schedule = serial_term_schedule(oneffsets, first_stage_bits=2)
        assert len(schedule) == 4

    def test_first_cycle_of_figure7_processes_low_offsets(self):
        oneffsets = [[1, 6, 7], [0, 7], [4, 8, 10]]
        schedule = serial_term_schedule(oneffsets, first_stage_bits=2)
        first = schedule[0]
        assert first.common_shift == 0
        assert first.consumed[0] == 1
        assert first.consumed[1] == 0
        assert first.consumed[2] is None  # 4 - 0 exceeds the 2-bit reach and stalls

    def test_second_cycle_of_figure7_uses_minimum_four(self):
        oneffsets = [[1, 6, 7], [0, 7], [4, 8, 10]]
        schedule = serial_term_schedule(oneffsets, first_stage_bits=2)
        second = schedule[1]
        assert second.common_shift == 4
        assert second.consumed == (6, 7, 4)

    def test_schedule_consumes_every_oneffset_exactly_once(self):
        oneffsets = [list(encode_oneffsets(v)) for v in (13, 255, 0, 6)]
        schedule = serial_term_schedule([list(lst) for lst in oneffsets], first_stage_bits=1)
        consumed = [[] for _ in oneffsets]
        for cycle in schedule:
            for lane, offset in enumerate(cycle.consumed):
                if offset is not None:
                    consumed[lane].append(offset)
        assert [tuple(lst) for lst in consumed] == [tuple(lst) for lst in oneffsets]

    def test_full_reach_takes_max_popcount_cycles(self):
        oneffsets = [[0, 3, 7, 11], [2], []]
        assert len(serial_term_schedule(oneffsets, first_stage_bits=4)) == 4

    def test_narrower_first_stage_never_reduces_cycles(self):
        oneffsets = [[0, 5, 9], [1, 2], [7, 15]]
        cycles = [len(serial_term_schedule(oneffsets, first_stage_bits=L)) for L in range(5)]
        assert cycles == sorted(cycles, reverse=True)

    def test_first_stage_shift_always_within_reach(self):
        oneffsets = [[0, 1, 9, 14], [3, 4], [2, 13]]
        for L in range(5):
            for cycle in serial_term_schedule(oneffsets, first_stage_bits=L):
                for shift in cycle.first_stage_shifts:
                    if shift is not None:
                        assert 0 <= shift < (1 << L)

    def test_all_empty_lanes_take_zero_cycles(self):
        assert serial_term_schedule([[], []], first_stage_bits=2) == []

    def test_cycle_count_clamps_to_one(self):
        assert schedule_cycle_count([[], []], first_stage_bits=2) == 1

    def test_rejects_descending_oneffsets(self):
        with pytest.raises(ValueError):
            serial_term_schedule([[3, 1]], first_stage_bits=2)
