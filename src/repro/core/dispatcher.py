"""The Dispatcher: pallet fetch from NM plus oneffset generation (Section V-C).

The dispatcher reads 16 neuron bricks (one pallet) from the central neuron
memory, converts them on the fly to the oneffset representation through 256
parallel oneffset generators, and broadcasts one oneffset per neuron per cycle
to all tiles.  Its latency is hidden by pipelining, so the cycle models only
need the NM fetch latency floor it imposes; the functional path here exists so
the mechanism itself is executable and testable, and to produce the memory
access counts the energy model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.arch.config import ChipConfig, DEFAULT_CHIP
from repro.arch.memory import AccessCounters, NeuronMemory
from repro.arch.tiling import BrickPosition, brick_positions, extract_brick, pallet_window_coordinates
from repro.nn.layers import ConvLayerSpec
from repro.nn.reference import pad_input
from repro.core.oneffset_generator import OneffsetGenerator

__all__ = ["DispatchStep", "Dispatcher"]


@dataclass(frozen=True)
class DispatchStep:
    """One brick step of one pallet as broadcast to the tiles.

    Attributes
    ----------
    pallet_index:
        Which pallet (window group) the step belongs to.
    position:
        The brick position within the window.
    oneffsets:
        Per window lane, per neuron lane: ascending oneffset lists.
    signs:
        Per window lane, per neuron lane: +1/-1 signs driving the PIP negation.
    nm_fetch_cycles:
        Cycles the NM fetch of this step's neuron bricks takes.
    """

    pallet_index: int
    position: BrickPosition
    oneffsets: tuple[tuple[tuple[int, ...], ...], ...]
    signs: tuple[tuple[int, ...], ...]
    nm_fetch_cycles: int

    @property
    def max_oneffsets(self) -> int:
        """Essential bits of the busiest neuron in the step (minimum 1)."""
        longest = max(
            (len(lane) for window in self.oneffsets for lane in window), default=0
        )
        return max(1, longest)


@dataclass
class Dispatcher:
    """Feeds the PRA tiles with oneffset-encoded neuron pallets."""

    chip: ChipConfig = field(default_factory=lambda: DEFAULT_CHIP)
    storage_bits: int = 16

    def __post_init__(self) -> None:
        self._memory = NeuronMemory(self.chip)
        self._generator = OneffsetGenerator(storage_bits=self.storage_bits)

    def dispatch_layer(
        self, layer: ConvLayerSpec, neurons: np.ndarray
    ) -> Iterator[DispatchStep]:
        """Yield every dispatch step of a layer in processing order."""
        padded = pad_input(np.asarray(neurons, dtype=np.int64), layer.padding)
        nm_cycles = self._memory.pallet_fetch_cycles(layer)
        positions = brick_positions(layer)
        for pallet_index, windows in enumerate(pallet_window_coordinates(layer)):
            for position in positions:
                window_offsets = []
                window_signs = []
                for oy, ox in windows:
                    brick = extract_brick(padded, layer, oy, ox, position)
                    lists = self._generator.oneffset_lists(brick)
                    window_offsets.append(tuple(tuple(lst) for lst in lists))
                    window_signs.append(tuple(-1 if v < 0 else 1 for v in brick))
                yield DispatchStep(
                    pallet_index=pallet_index,
                    position=position,
                    oneffsets=tuple(window_offsets),
                    signs=tuple(window_signs),
                    nm_fetch_cycles=nm_cycles,
                )

    def layer_accesses(self, layer: ConvLayerSpec) -> AccessCounters:
        """NM/NBin access counts for one layer (per filter pass the tiles repeat SB reads)."""
        passes = layer.filter_passes(self.chip.filters_per_cycle)
        steps = layer.window_groups * layer.bricks_per_window
        return AccessCounters(
            nm_reads=steps,
            nm_writes=max(1, layer.output_neurons // self.chip.synapses_per_filter_lane),
            sb_reads=steps * passes,
            nbin_reads=steps * passes,
            nbout_writes=max(1, layer.output_neurons // self.chip.synapses_per_filter_lane),
        )
