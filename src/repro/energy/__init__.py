"""Area, power and energy-efficiency models calibrated to the paper's synthesis results."""

from repro.energy.area import AreaReport, chip_area, design_area, unit_area
from repro.energy.components import (
    AREA_COEFFICIENTS,
    MEMORY_AREA_MM2,
    MEMORY_POWER_W,
    POWER_COEFFICIENTS,
    ComponentCounts,
    component_counts_for,
    dadn_unit_counts,
    pragmatic_unit_counts,
    stripes_unit_counts,
)
from repro.energy.efficiency import (
    EfficiencyEntry,
    design_efficiency,
    energy_efficiency,
    execution_energy,
)
from repro.energy.power import PowerReport, chip_power, design_power, unit_power

__all__ = [
    "ComponentCounts",
    "component_counts_for",
    "dadn_unit_counts",
    "stripes_unit_counts",
    "pragmatic_unit_counts",
    "AREA_COEFFICIENTS",
    "POWER_COEFFICIENTS",
    "MEMORY_AREA_MM2",
    "MEMORY_POWER_W",
    "AreaReport",
    "unit_area",
    "chip_area",
    "design_area",
    "PowerReport",
    "unit_power",
    "chip_power",
    "design_power",
    "EfficiencyEntry",
    "design_efficiency",
    "energy_efficiency",
    "execution_energy",
]
