"""Tests for the cache-lifecycle layer: manifest, compression, GC, CLI verbs.

The lifecycle contract: entry counts and disk usage come from the persistent
manifest (no directory scans), garbage collection evicts least-recently-used
entries first under a byte cap, new entries are gzip-compressed while legacy
uncompressed entries keep hitting, and the in-process memo of a disk cache is
bounded without ever losing disk hits.
"""

import gzip
import json

import pytest

from repro.experiments.runner import main as runner_main
from repro.runtime.cache import CacheStats, ResultCache
from repro.runtime.lifecycle import MANIFEST_NAME, CacheManifest

PAYLOAD = {"network": "alexnet", "accelerator": "x", "layers": []}


def legacy_entry(key: str, payload: dict, kind: str = "network_result") -> str:
    """An entry in the pre-compression on-disk format."""
    return json.dumps({"schema": 1, "kind": kind, "key": key, "payload": payload})


# -------------------------------------------------------------------- manifest
class TestManifest:
    def test_len_reads_the_manifest_not_the_directory(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("aaa", PAYLOAD)
        cache.put("bbb", PAYLOAD)
        # Remove one entry file behind the manifest's back: a fresh cache's
        # count still comes from the index, proving no glob happens.
        (tmp_path / "aaa.json.gz").unlink()
        fresh = ResultCache(directory=tmp_path)
        assert len(fresh) == 2
        assert fresh.usage()["entries"] == 2

    def test_manifest_maintained_incrementally(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("aaa", PAYLOAD)
        raw = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert set(raw["entries"]) == {"aaa"}
        meta = raw["entries"]["aaa"]
        assert meta["kind"] == "network_result"
        assert meta["size"] == (tmp_path / "aaa.json.gz").stat().st_size
        assert meta["created"] <= meta["last_used"]

    def test_corrupted_manifest_is_rebuilt_from_the_directory(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("aaa", PAYLOAD)
        cache.put("bbb", PAYLOAD)
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        fresh = ResultCache(directory=tmp_path)
        assert len(fresh) == 2
        assert fresh.manifest.rebuilds == 1
        assert fresh.usage()["disk_bytes"] > 0
        # The rebuild was persisted: the next instance loads it directly.
        again = ResultCache(directory=tmp_path)
        assert len(again) == 2
        assert again.manifest.rebuilds == 0

    def test_missing_manifest_rebuild_indexes_legacy_entries(self, tmp_path):
        (tmp_path / "old.json").write_text(legacy_entry("old", PAYLOAD))
        cache = ResultCache(directory=tmp_path)
        assert len(cache) == 1
        assert cache.usage()["disk_bytes"] == (tmp_path / "old.json").stat().st_size

    def test_external_clear_is_not_resurrected_by_a_live_process(self, tmp_path):
        live = ResultCache(directory=tmp_path)
        live.put("aaa", PAYLOAD)
        # Another process clears the cache (entry files + manifest gone).
        ResultCache(directory=tmp_path).clear()
        # The live process's next store must not write its stale record back.
        live.put("bbb", PAYLOAD)
        fresh = ResultCache(directory=tmp_path)
        assert set(fresh.manifest.entries()) == {"bbb"}
        assert fresh.usage()["entries"] == 1

    def test_memo_hits_advance_the_lru_clock(self, tmp_path):
        # Regression: a hot entry answered from the in-process memo must not
        # look least-recently-used to GC.
        cache = ResultCache(directory=tmp_path)
        cache.put("aaa", PAYLOAD)
        cache.put("bbb", PAYLOAD)
        cache.manifest.record_use("aaa", now=1000.0)
        cache.manifest.record_use("bbb", now=2000.0)
        assert cache.get("aaa") == PAYLOAD  # memo hit (real-time timestamp)
        entries = cache.manifest.entries()
        assert entries["aaa"]["last_used"] > entries["bbb"]["last_used"]

    def test_concurrent_writers_merge_instead_of_clobbering(self, tmp_path):
        # Two processes sharing one directory are modeled by two instances
        # whose manifests were loaded before either stored anything.
        first = ResultCache(directory=tmp_path)
        second = ResultCache(directory=tmp_path)
        assert len(first) == 0 and len(second) == 0  # both indexes loaded
        first.put("aaa", PAYLOAD)
        second.put("bbb", PAYLOAD)
        merged = CacheManifest(tmp_path)
        assert set(merged.entries()) == {"aaa", "bbb"}


# ----------------------------------------------------------------- compression
class TestCompression:
    def test_new_entries_are_compressed_and_round_trip(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("aaa", PAYLOAD)
        data = (tmp_path / "aaa.json.gz").read_bytes()
        assert data[:2] == b"\x1f\x8b"  # gzip magic
        assert json.loads(gzip.decompress(data))["payload"] == PAYLOAD
        fresh = ResultCache(directory=tmp_path)
        assert fresh.get("aaa") == PAYLOAD

    def test_legacy_uncompressed_entries_still_hit(self, tmp_path):
        (tmp_path / "old.json").write_text(legacy_entry("old", PAYLOAD))
        cache = ResultCache(directory=tmp_path)
        assert cache.contains("old")
        assert cache.get("old") == PAYLOAD
        assert cache.stats.hits == 1
        assert cache.stats.errors == 0

    def test_mixed_generations_coexist(self, tmp_path):
        (tmp_path / "old.json").write_text(legacy_entry("old", PAYLOAD))
        cache = ResultCache(directory=tmp_path)
        cache.put("new", PAYLOAD)
        fresh = ResultCache(directory=tmp_path)
        assert fresh.get("old") == PAYLOAD
        assert fresh.get("new") == PAYLOAD
        assert len(fresh) == 2

    def test_rewriting_a_legacy_key_retires_the_uncompressed_copy(self, tmp_path):
        (tmp_path / "old.json").write_text(legacy_entry("old", {"stale": True}))
        cache = ResultCache(directory=tmp_path)
        cache.put("old", PAYLOAD)
        assert not (tmp_path / "old.json").exists()
        assert ResultCache(directory=tmp_path).get("old") == PAYLOAD


# -------------------------------------------------------------------------- gc
class TestGarbageCollection:
    def fill(self, tmp_path, keys):
        cache = ResultCache(directory=tmp_path)
        for index, key in enumerate(keys):
            cache.put(key, {**PAYLOAD, "index": index})
            # Deterministic, strictly increasing LRU timestamps.
            cache.manifest.record_use(key, now=1000.0 + index)
        return cache

    def test_gc_respects_the_byte_cap_evicting_lru_first(self, tmp_path):
        cache = self.fill(tmp_path, ["aaa", "bbb", "ccc"])
        sizes = {key: meta["size"] for key, meta in cache.manifest.entries().items()}
        # Cap leaves room for exactly the two most recently used entries.
        result = cache.gc(max_bytes=sizes["bbb"] + sizes["ccc"])
        assert result.removed_keys == ["aaa"]
        assert result.remaining_entries == 2
        assert cache.get("aaa") is None  # memo cannot resurrect an evicted key
        assert cache.get("bbb") is not None
        assert cache.get("ccc") is not None

    def test_gc_max_age_evicts_stale_entries(self, tmp_path):
        cache = self.fill(tmp_path, ["aaa", "bbb"])
        result = cache.manifest.gc(max_age=10.0, now=1011.0)
        # now=1011: aaa was last used at 1000 (age 11 > 10), bbb at 1001.
        assert result.removed_keys == ["aaa"]
        assert len(cache.manifest) == 1

    def test_gc_without_bounds_is_a_no_op(self, tmp_path):
        cache = self.fill(tmp_path, ["aaa"])
        result = cache.gc()
        assert result.removed_entries == 0
        assert result.remaining_entries == 1

    def test_gc_on_a_memory_cache_is_empty(self):
        cache = ResultCache()
        cache.put("aaa", PAYLOAD)
        assert cache.gc(max_bytes=0).removed_entries == 0
        assert cache.get("aaa") == PAYLOAD

    def test_clear_removes_entries_and_manifest(self, tmp_path):
        cache = self.fill(tmp_path, ["aaa", "bbb"])
        assert cache.clear() == 2
        assert len(cache) == 0
        assert not (tmp_path / "aaa.json.gz").exists()
        assert cache.get("aaa") is None
        # A cleared cache keeps working.
        cache.put("ccc", PAYLOAD)
        assert ResultCache(directory=tmp_path).get("ccc") == PAYLOAD

    def test_clear_removes_unindexed_orphan_files(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("aaa", PAYLOAD)
        # A file a lost manifest race left unindexed must not survive clear().
        (tmp_path / "orphan.json.gz").write_bytes(gzip.compress(b"{}"))
        assert cache.clear() == 2
        assert list(tmp_path.iterdir()) == []

    def test_survivors_still_hit_after_gc_across_instances(self, tmp_path):
        cache = self.fill(tmp_path, ["aaa", "bbb", "ccc"])
        cache.gc(max_bytes=cache.manifest.total_bytes() - 1)  # evicts aaa only
        fresh = ResultCache(directory=tmp_path)
        assert fresh.get("bbb") is not None
        assert fresh.get("ccc") is not None
        assert fresh.stats.misses == 0


# ----------------------------------------------------------------- bounded memo
class TestBoundedMemo:
    def test_memo_evicts_without_losing_disk_hits(self, tmp_path):
        cache = ResultCache(directory=tmp_path, memo_entries=2)
        for key in ("aaa", "bbb", "ccc", "ddd"):
            cache.put(key, {**PAYLOAD, "key": key})
        assert len(cache._memory) == 2  # bounded despite 4 stores
        for key in ("aaa", "bbb", "ccc", "ddd"):
            assert cache.get(key) == {**PAYLOAD, "key": key}  # disk backs the memo
        assert cache.stats.misses == 0
        assert len(cache._memory) == 2

    def test_memory_mode_memo_is_never_evicted(self):
        cache = ResultCache(memo_entries=2)
        for key in ("aaa", "bbb", "ccc", "ddd"):
            cache.put(key, {**PAYLOAD, "key": key})
        for key in ("aaa", "bbb", "ccc", "ddd"):
            assert cache.get(key) == {**PAYLOAD, "key": key}
        assert cache.stats.misses == 0


# ------------------------------------------------------------------ observation
class TestObservation:
    def test_snapshot_carries_state_gauges_alongside_counters(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("aaa", PAYLOAD)
        cache.get("aaa")
        snap = cache.snapshot()
        assert (snap.stores, snap.hits) == (1, 1)
        assert snap.disk_entries == 1
        assert snap.disk_bytes > 0
        assert snap.memo_entries == 1
        # Gauges merge by max: merging two snapshots of one shared cache
        # must not double its size, while counters still sum.
        merged = CacheStats()
        merged.merge(snap)
        merged.merge(snap)
        assert merged.disk_bytes == snap.disk_bytes
        assert merged.hits == 2

    def test_run_report_carries_manifest_backed_usage(self, tmp_path):
        from repro.experiments.base import get_preset
        from repro.runtime import run_experiments

        preset = get_preset("smoke")
        report = run_experiments(["table3"], preset=preset, cache_dir=tmp_path)
        assert report.cache_entries == len(ResultCache(directory=tmp_path))
        assert f"cache dir: {tmp_path}" in report.summary()
        assert "entries," in report.summary()


# ------------------------------------------------------------------- CLI verbs
class TestCacheCLI:
    def populate(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ResultCache(directory=tmp_path)
        cache.put("aaa", PAYLOAD)
        cache.put("bbb", PAYLOAD)
        return cache

    def test_cache_stats_reports_manifest_numbers(self, monkeypatch, tmp_path, capsys):
        self.populate(monkeypatch, tmp_path)
        assert runner_main(["--cache-stats"]) == 0
        out = capsys.readouterr().out
        assert f"cache dir: {tmp_path}" in out
        assert "entries: 2" in out
        assert "disk bytes:" in out

    def test_cache_gc_enforces_the_byte_cap(self, monkeypatch, tmp_path, capsys):
        cache = self.populate(monkeypatch, tmp_path)
        cache.manifest.record_use("bbb", now=9e9)  # bbb most recently used
        assert runner_main(["--cache-gc", "--max-bytes", "1"]) == 0
        assert "evicted 2 entries" in capsys.readouterr().out
        assert len(ResultCache(directory=tmp_path)) == 0

    def test_cache_clear_empties_the_directory(self, monkeypatch, tmp_path, capsys):
        self.populate(monkeypatch, tmp_path)
        assert runner_main(["--cache-clear"]) == 0
        assert "cleared 2 entries" in capsys.readouterr().out
        assert not (tmp_path / "aaa.json.gz").exists()

    def test_cache_stats_on_a_missing_directory_has_no_side_effects(
        self, monkeypatch, tmp_path, capsys
    ):
        target = tmp_path / "nope"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(target))
        assert runner_main(["--cache-stats"]) == 0
        assert "does not exist" in capsys.readouterr().out
        assert not target.exists()  # the read-only verb created nothing

    def test_cache_gc_requires_a_bound(self, monkeypatch, tmp_path):
        self.populate(monkeypatch, tmp_path)
        with pytest.raises(SystemExit):
            runner_main(["--cache-gc"])

    def test_size_and_age_suffix_parsing(self):
        from repro.experiments.base import parse_age, parse_size

        assert parse_size("1024") == 1024
        assert parse_size("2K") == 2048
        assert parse_size("500M") == 500 * 1024**2
        assert parse_size("1g") == 1024**3
        assert parse_age("90") == 90.0
        assert parse_age("2m") == 120.0
        assert parse_age("3h") == 10800.0
        assert parse_age("30d") == 30 * 86400.0
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_size("lots")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_age("-5")


class TestEnvVarResolution:
    def test_cache_dir_env_var_is_resolved_at_call_time(self, monkeypatch, tmp_path):
        # Regression: DEFAULT_CACHE_DIR used to snapshot $REPRO_CACHE_DIR at
        # import time, silently ignoring later changes.
        from repro.runtime.session import DEFAULT_CACHE_DIR, default_cache_dir

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir() == DEFAULT_CACHE_DIR
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "late"))
        assert default_cache_dir() == tmp_path / "late"
        monkeypatch.setenv("REPRO_CACHE_DIR", "")  # empty means unset
        assert default_cache_dir() == DEFAULT_CACHE_DIR
