"""Figure 2 — convolutional layer computational demands, 16-bit fixed point."""

from __future__ import annotations

from repro.analysis.potential import FIG2_ENGINES
from repro.analysis.speedup import geometric_mean
from repro.analysis.tables import format_percent
from repro.experiments.base import ExperimentResult, Preset, get_preset
from repro.runtime import StatisticsRequest, TraceSpec, analyze

__all__ = ["run", "plan", "PAPER_AVERAGES"]

#: Average relative term counts the paper reports in Section II-B.
PAPER_AVERAGES: dict[str, float] = {
    "ZN": 0.39,
    "CVN": 0.63,
    "Stripes": 0.53,
    "PRA-fp16": 0.10,
    "PRA-red": 0.08,
}


def plan(preset: str | Preset = "fast", seed: int = 0) -> list[StatisticsRequest]:
    """The per-network statistics passes this experiment needs."""
    config = get_preset(preset)
    return [
        StatisticsRequest(
            statistic="fig2_terms",
            trace=TraceSpec(network=name, representation="fixed16", seed=seed),
            samples_per_layer=config.samples_per_layer,
        )
        for name in config.networks
    ]


def run(preset: str | Preset = "fast", seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 2: relative number of terms vs the DaDN baseline."""
    config = get_preset(preset)
    entries = [analyze(request) for request in plan(config, seed)]
    headers = ["network", *FIG2_ENGINES]
    rows: list[list[object]] = []
    metadata: dict[str, float] = {}
    for entry in entries:
        network = entry["network"]
        terms = entry["relative_terms"]
        rows.append(
            [network] + [format_percent(terms[engine]) for engine in FIG2_ENGINES]
        )
        for engine in FIG2_ENGINES:
            metadata[f"{network}:{engine}"] = terms[engine]
    averages = {
        engine: geometric_mean(entry["relative_terms"][engine] for entry in entries)
        for engine in FIG2_ENGINES
    }
    rows.append(["geomean", *[format_percent(averages[engine]) for engine in FIG2_ENGINES]])
    for engine, value in averages.items():
        metadata[f"geomean:{engine}"] = value
    notes = "Paper averages (Section II-B): " + ", ".join(
        f"{engine} {format_percent(value)}" for engine, value in PAPER_AVERAGES.items()
    )
    return ExperimentResult(
        experiment="fig2",
        title="Figure 2: relative term counts, 16-bit fixed-point representation (lower is better)",
        headers=headers,
        rows=rows,
        notes=notes,
        metadata=metadata,
    )
