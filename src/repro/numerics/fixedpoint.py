"""Fixed-point number representation used by DaDianNao-style accelerators.

The paper's baseline hardware stores neurons (activations) and synapses (weights)
as 16-bit fixed-point values.  This module provides a small, explicit fixed-point
format abstraction:

* quantize real values to integers expressed in units of the least significant bit,
* recover real values from the integer representation,
* inspect the bit-level content of the stored magnitude, which is what the
  Pragmatic accelerator exploits.

Neurons that have passed through a ReLU are non-negative; synapses are signed.
Pragmatic processes the *magnitude* bit-serially and handles the sign separately
(the ``neg`` input of the PIP in Figure 6 of the paper), so all essential-bit
queries in this module operate on absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FixedPointFormat",
    "FIXED16",
    "FIXED8",
    "bit_matrix",
    "popcount",
    "leading_bit_position",
    "trailing_bit_position",
]


@dataclass(frozen=True)
class FixedPointFormat:
    """A two's-complement fixed-point format.

    Parameters
    ----------
    total_bits:
        Width of the stored value, including the sign bit when ``signed``.
    frac_bits:
        Number of fractional bits.  The least significant bit has weight
        ``2 ** -frac_bits``.
    signed:
        Whether negative values are representable.  Post-ReLU neuron streams use
        an unsigned interpretation of the same storage width.
    """

    total_bits: int = 16
    frac_bits: int = 0
    signed: bool = True

    def __post_init__(self) -> None:
        if self.total_bits < 1:
            raise ValueError(f"total_bits must be positive, got {self.total_bits}")
        if self.frac_bits < 0:
            raise ValueError(f"frac_bits must be non-negative, got {self.frac_bits}")
        if self.frac_bits >= self.total_bits + 16:
            raise ValueError("frac_bits is unreasonably large for the given width")

    @property
    def magnitude_bits(self) -> int:
        """Number of bits available to the magnitude (excludes the sign bit)."""
        return self.total_bits - 1 if self.signed else self.total_bits

    @property
    def scale(self) -> float:
        """Real-value weight of the least significant bit."""
        return 2.0 ** (-self.frac_bits)

    @property
    def max_int(self) -> int:
        """Largest representable integer (in LSB units)."""
        return (1 << self.magnitude_bits) - 1

    @property
    def min_int(self) -> int:
        """Smallest representable integer (in LSB units)."""
        return -(1 << self.magnitude_bits) if self.signed else 0

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_int * self.scale

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.min_int * self.scale

    def quantize(self, values: np.ndarray | float) -> np.ndarray:
        """Quantize real ``values`` to integers in LSB units, with saturation."""
        scaled = np.round(np.asarray(values, dtype=np.float64) / self.scale)
        clipped = np.clip(scaled, self.min_int, self.max_int)
        return clipped.astype(np.int64)

    def dequantize(self, ints: np.ndarray | int) -> np.ndarray:
        """Convert integers in LSB units back to real values."""
        return np.asarray(ints, dtype=np.float64) * self.scale

    def clamp_int(self, ints: np.ndarray | int) -> np.ndarray:
        """Saturate integer values to the representable range."""
        return np.clip(np.asarray(ints, dtype=np.int64), self.min_int, self.max_int)

    def is_representable(self, ints: np.ndarray | int) -> np.ndarray:
        """Return a boolean mask of values that fit in the format without saturation."""
        arr = np.asarray(ints, dtype=np.int64)
        return (arr >= self.min_int) & (arr <= self.max_int)


#: The 16-bit fixed-point format of DaDianNao / Stripes / Pragmatic.
FIXED16 = FixedPointFormat(total_bits=16, frac_bits=0, signed=True)

#: An 8-bit fixed-point format (used only for small functional tests).
FIXED8 = FixedPointFormat(total_bits=8, frac_bits=0, signed=True)


def _as_magnitude(values: np.ndarray, bits: int) -> np.ndarray:
    """Return ``|values|`` as unsigned integers, checking that they fit in ``bits``."""
    arr = np.abs(np.asarray(values, dtype=np.int64))
    limit = (1 << bits) - 1
    if arr.size and int(arr.max()) > limit:
        raise ValueError(
            f"magnitude {int(arr.max())} does not fit in {bits} bits (max {limit})"
        )
    return arr.astype(np.uint64)


def bit_matrix(values: np.ndarray, bits: int = 16) -> np.ndarray:
    """Expand integer magnitudes into a boolean bit matrix.

    Parameters
    ----------
    values:
        Integer array (any shape); the magnitudes are expanded.
    bits:
        Number of bit positions to expand (positions ``0`` — LSB — to ``bits-1``).

    Returns
    -------
    numpy.ndarray
        Boolean array of shape ``values.shape + (bits,)`` where element
        ``[..., p]`` is True when bit ``p`` of the magnitude is set.
    """
    mags = _as_magnitude(values, bits)
    positions = np.arange(bits, dtype=np.uint64)
    return ((mags[..., None] >> positions) & np.uint64(1)).astype(bool)


def popcount(values: np.ndarray, bits: int = 16) -> np.ndarray:
    """Count the set bits (essential bits) in each magnitude.

    This is the quantity the paper calls the *essential bit content* of a neuron.
    """
    return bit_matrix(values, bits).sum(axis=-1).astype(np.int64)


def leading_bit_position(values: np.ndarray, bits: int = 16) -> np.ndarray:
    """Position of the most significant set bit of each magnitude (-1 for zero)."""
    mat = bit_matrix(values, bits)
    positions = np.arange(bits)
    weighted = np.where(mat, positions, -1)
    return weighted.max(axis=-1).astype(np.int64)


def trailing_bit_position(values: np.ndarray, bits: int = 16) -> np.ndarray:
    """Position of the least significant set bit of each magnitude (``bits`` for zero)."""
    mat = bit_matrix(values, bits)
    positions = np.arange(bits)
    weighted = np.where(mat, positions, bits)
    return weighted.min(axis=-1).astype(np.int64)
