"""Figure 10 — PRA-2b speedup with per-column synchronization vs SSR count."""

from __future__ import annotations

from repro.analysis.speedup import geometric_mean, stripes_result
from repro.analysis.tables import format_ratio
from repro.core.variants import fig10_variants
from repro.experiments.base import ExperimentResult, Preset, get_preset
from repro.runtime import SimulationRequest, TraceSpec, current_session, simulate

__all__ = ["run", "plan", "PAPER_GEOMEANS"]

#: Geometric means the paper reports: one SSR already reaches 3.1x, the ideal
#: configuration 3.45x.
PAPER_GEOMEANS: dict[str, float] = {"1-reg": 3.1, "perCol-ideal": 3.45}


def plan(preset: str | Preset = "fast", seed: int = 0) -> list[SimulationRequest]:
    """The cycle simulations this experiment needs (one job per network)."""
    config = get_preset(preset)
    variants = tuple(fig10_variants().items())
    return [
        SimulationRequest(
            trace=TraceSpec(network=name, seed=seed),
            configs=variants,
            sampling=config.sampling(),
        )
        for name in config.networks
    ]


def run(preset: str | Preset = "fast", seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 10: column synchronization as a function of the SSR count."""
    config = get_preset(preset)
    variants = fig10_variants()
    engine_names = ["Stripes", *variants.keys()]
    headers = ["network", *engine_names]
    rows: list[list[object]] = []
    metadata: dict[str, float] = {}
    speedups: dict[str, list[float]] = {name: [] for name in engine_names}

    for request in plan(config, seed):
        results = simulate(request)
        trace = current_session().trace(request.trace)
        network_name = trace.network.name
        stripes = stripes_result(trace)
        row: list[object] = [network_name, format_ratio(stripes.speedup)]
        speedups["Stripes"].append(stripes.speedup)
        metadata[f"{network_name}:Stripes"] = stripes.speedup
        for label in variants:
            speedup = results[label].speedup
            row.append(format_ratio(speedup))
            speedups[label].append(speedup)
            metadata[f"{network_name}:{label}"] = speedup
        rows.append(row)

    geomeans = {name: geometric_mean(values) for name, values in speedups.items()}
    rows.append(["geomean", *[format_ratio(geomeans[name]) for name in engine_names]])
    for name, value in geomeans.items():
        metadata[f"geomean:{name}"] = value
    notes = (
        "Paper geometric means: PRA-2b with a single SSR reaches 3.1x, close to the\n"
        "3.45x of the ideal (infinitely buffered) per-column configuration."
    )
    return ExperimentResult(
        experiment="fig10",
        title="Figure 10: PRA-2b speedup with per-column synchronization vs SSR count",
        headers=headers,
        rows=rows,
        notes=notes,
        metadata=metadata,
    )
