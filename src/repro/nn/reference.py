"""Reference (bit-parallel) convolution used as the functional golden model.

Every accelerator functional model in this repository — DaDianNao, Stripes and
the Pragmatic PIP pipeline — must produce exactly the same integer outputs as
this straightforward NumPy implementation of the convolution of Section IV-A.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import ConvLayerSpec

__all__ = ["pad_input", "conv2d_reference", "relu", "check_shapes"]


def check_shapes(layer: ConvLayerSpec, neurons: np.ndarray, synapses: np.ndarray) -> None:
    """Validate that neuron/synapse arrays match the layer geometry.

    ``neurons`` is expected as ``[I, Ny, Nx]`` (unpadded) and ``synapses`` as
    ``[N, I, Fy, Fx]``.
    """
    expected_neurons = (layer.input_channels, layer.input_height, layer.input_width)
    expected_synapses = (
        layer.num_filters,
        layer.input_channels,
        layer.filter_height,
        layer.filter_width,
    )
    if tuple(neurons.shape) != expected_neurons:
        raise ValueError(
            f"neuron array shape {tuple(neurons.shape)} does not match layer "
            f"{layer.name!r} expectation {expected_neurons}"
        )
    if tuple(synapses.shape) != expected_synapses:
        raise ValueError(
            f"synapse array shape {tuple(synapses.shape)} does not match layer "
            f"{layer.name!r} expectation {expected_synapses}"
        )


def pad_input(neurons: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the spatial dimensions of an ``[I, Ny, Nx]`` neuron array."""
    if padding == 0:
        return neurons
    if padding < 0:
        raise ValueError("padding must be non-negative")
    return np.pad(neurons, ((0, 0), (padding, padding), (padding, padding)))


def conv2d_reference(
    layer: ConvLayerSpec, neurons: np.ndarray, synapses: np.ndarray
) -> np.ndarray:
    """Compute the layer's output neurons with ordinary integer arithmetic.

    Parameters
    ----------
    layer:
        Layer geometry.
    neurons:
        Input neuron array ``[I, Ny, Nx]`` (integer, unpadded).
    synapses:
        Synapse array ``[N, I, Fy, Fx]`` (integer).

    Returns
    -------
    numpy.ndarray
        Output neuron array ``[N, Oy, Ox]`` as ``int64`` partial sums (no
        activation function applied — DaDN applies ``f`` after the full window
        has been reduced, which callers can do with :func:`relu`).
    """
    check_shapes(layer, neurons, synapses)
    padded = pad_input(np.asarray(neurons, dtype=np.int64), layer.padding)
    weights = np.asarray(synapses, dtype=np.int64)
    out = np.zeros((layer.num_filters, layer.output_height, layer.output_width), dtype=np.int64)
    stride = layer.stride
    for oy in range(layer.output_height):
        for ox in range(layer.output_width):
            window = padded[
                :,
                oy * stride : oy * stride + layer.filter_height,
                ox * stride : ox * stride + layer.filter_width,
            ]
            # weights: [N, I, Fy, Fx], window: [I, Fy, Fx]
            out[:, oy, ox] = np.tensordot(weights, window, axes=([1, 2, 3], [0, 1, 2]))
    return out


def relu(values: np.ndarray) -> np.ndarray:
    """Rectified linear unit applied element-wise."""
    return np.maximum(np.asarray(values), 0)
