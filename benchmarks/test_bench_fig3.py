"""Benchmark: regenerate Figure 3 (term counts, 8-bit quantized)."""


def test_bench_fig3(report):
    result = report("fig3")
    pra = result.metadata["geomean:PRA"]
    zero_skip = result.metadata["geomean:ZN"]
    # Paper: skipping zero neurons removes only ~30% of terms, Pragmatic up to ~71%.
    assert pra < zero_skip <= 1.0
    assert pra < 0.5
