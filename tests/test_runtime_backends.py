"""Conformance suite for every :class:`CacheBackend` implementation.

One parametrized battery runs against all backends, pinning the interface
contract ``ResultCache`` (and therefore every layer above it) relies on:
store/load/probe semantics, usage accounting, clear, corruption handling,
persistence across instances, and multi-process-style sharing for the
backends that claim it.  Backend-specific behaviour (GC, manifest sync) gets
targeted classes below the shared battery.
"""

import gzip
import json

import pytest

from repro.runtime import lifecycle
from repro.runtime.backends import (
    CorruptEntry,
    FilesystemBackend,
    InMemoryBackend,
    SharedDirectoryBackend,
)
from repro.runtime.cache import CacheStats, ResultCache

BACKENDS = ("memory", "filesystem", "shared")


@pytest.fixture
def make_backend(tmp_path):
    """Factory building a fresh backend of the requested flavour.

    Repeated calls with the same flavour return backends over the *same*
    storage (a second filesystem backend sees the first one's entries), which
    is what the persistence and sharing tests need.
    """

    def build(flavour: str):
        if flavour == "memory":
            return InMemoryBackend()
        if flavour == "filesystem":
            return FilesystemBackend(tmp_path / "cache")
        if flavour == "shared":
            return SharedDirectoryBackend(tmp_path / "cache", sync_interval=0.0)
        raise AssertionError(flavour)

    return build


@pytest.mark.parametrize("flavour", BACKENDS)
class TestBackendConformance:
    def test_store_load_round_trip(self, make_backend, flavour):
        backend = make_backend(flavour)
        payload = {"cycles": [1.5, 2.0], "name": "alexnet"}
        backend.store("k1", payload, "network_result")
        assert backend.load("k1", "network_result") == payload
        assert backend.load("absent", "network_result") is None

    def test_kind_namespaces_do_not_alias(self, make_backend, flavour):
        backend = make_backend(flavour)
        backend.store("k1", {"a": 1}, "network_result")
        # A lookup under the wrong kind must never return the payload —
        # returning None or raising CorruptEntry are both conforming.
        try:
            assert backend.load("k1", "statistics") is None
        except CorruptEntry:
            pass

    def test_probe_does_not_lie(self, make_backend, flavour):
        backend = make_backend(flavour)
        assert not backend.probe("k1", "network_result")
        backend.store("k1", {"a": 1}, "network_result")
        assert backend.probe("k1", "network_result")

    def test_store_overwrites(self, make_backend, flavour):
        backend = make_backend(flavour)
        backend.store("k1", {"v": 1}, "network_result")
        backend.store("k1", {"v": 2}, "network_result")
        assert backend.load("k1", "network_result") == {"v": 2}
        assert len(backend) == 1

    def test_len_and_usage(self, make_backend, flavour):
        backend = make_backend(flavour)
        assert len(backend) == 0
        backend.store("k1", {"a": 1}, "network_result")
        backend.store("k2", {"b": 2}, "statistics")
        assert len(backend) == 2
        usage = backend.usage()
        assert usage["entries"] == 2
        assert "disk_bytes" in usage
        if backend.persistent:
            assert usage["disk_bytes"] > 0

    def test_clear(self, make_backend, flavour):
        backend = make_backend(flavour)
        backend.store("k1", {"a": 1}, "network_result")
        backend.store("k2", {"b": 2}, "network_result")
        assert backend.clear() == 2
        assert len(backend) == 0
        assert backend.load("k1", "network_result") is None

    def test_describe_is_informative(self, make_backend, flavour):
        backend = make_backend(flavour)
        assert isinstance(backend.describe(), str) and backend.describe()

    def test_persistence_across_instances(self, make_backend, flavour):
        backend = make_backend(flavour)
        backend.store("k1", {"a": 1}, "network_result")
        again = make_backend(flavour)
        if backend.persistent:
            assert again.load("k1", "network_result") == {"a": 1}
        else:
            assert again.load("k1", "network_result") is None

    def test_result_cache_over_backend(self, make_backend, flavour):
        """ResultCache policy (stats, memo) works over every backend."""
        cache = ResultCache(backend=make_backend(flavour))
        assert cache.get("k1") is None
        cache.put("k1", {"a": 1})
        assert cache.get("k1") == {"a": 1}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1
        assert cache.contains("k1")
        assert len(cache) == 1
        snapshot = cache.snapshot()
        assert snapshot.hits == 1

    def test_result_cache_memo_eviction_falls_back_to_backend(
        self, make_backend, flavour
    ):
        cache = ResultCache(backend=make_backend(flavour), memo_entries=2)
        for index in range(4):
            cache.put(f"k{index}", {"v": index})
        assert len(cache._memory) == 2  # memo bounded...
        assert cache.get("k0") == {"v": 0}  # ...but the backend still serves


class TestPersistentBackendCorruption:
    @pytest.mark.parametrize("flavour", ["filesystem", "shared"])
    def test_corrupt_entry_raises_and_drops(self, make_backend, flavour):
        backend = make_backend(flavour)
        backend.store("k1", {"a": 1}, "network_result")
        path = lifecycle.entry_path(backend.directory, "k1")
        path.write_bytes(b"not gzip, not json")
        with pytest.raises(CorruptEntry):
            backend.load("k1", "network_result")
        assert not path.exists()  # dropped, not left to fail forever
        assert backend.load("k1", "network_result") is None

    @pytest.mark.parametrize("flavour", ["filesystem", "shared"])
    def test_wrong_schema_is_corruption(self, make_backend, flavour):
        backend = make_backend(flavour)
        entry = {"schema": 999, "kind": "network_result", "key": "k1", "payload": {}}
        path = lifecycle.entry_path(backend.directory, "k1")
        path.write_bytes(gzip.compress(json.dumps(entry).encode()))
        with pytest.raises(CorruptEntry):
            backend.probe("k1", "network_result")

    @pytest.mark.parametrize("flavour", ["filesystem", "shared"])
    def test_result_cache_counts_corruption_as_miss(self, make_backend, flavour):
        cache = ResultCache(backend=make_backend(flavour))
        cache.put("k1", {"a": 1})
        cache._memory.clear()  # force the next get through the backend
        lifecycle.entry_path(cache.directory, "k1").write_bytes(b"garbage")
        assert cache.get("k1") is None
        assert cache.stats.errors == 1


class TestPersistentBackendGC:
    @pytest.mark.parametrize("flavour", ["filesystem", "shared"])
    def test_gc_enforces_byte_cap(self, make_backend, flavour):
        backend = make_backend(flavour)
        for index in range(3):
            backend.store(f"k{index}", {"blob": "x" * 200, "i": index}, "network_result")
        result = backend.gc(max_bytes=1)
        assert result.removed_entries == 3
        assert len(backend) == 0

    def test_memory_backend_gc_is_a_noop(self):
        backend = InMemoryBackend()
        backend.store("k1", {"a": 1}, "network_result")
        result = backend.gc(max_bytes=0)
        assert result.removed_entries == 0
        assert backend.load("k1", "network_result") == {"a": 1}


class TestSharedDirectoryBackend:
    def test_sibling_stores_are_visible(self, tmp_path):
        """Two backends on one directory see each other's entries and sizes."""
        a = SharedDirectoryBackend(tmp_path, sync_interval=0.0)
        b = SharedDirectoryBackend(tmp_path, sync_interval=0.0)
        a.store("k1", {"a": 1}, "network_result")
        # Entry reads always go to the filesystem: immediately coherent.
        assert b.load("k1", "network_result") == {"a": 1}
        assert b.probe("k1", "network_result")
        # Usage re-syncs from the shared manifest.
        assert b.usage()["entries"] == 1
        assert len(b) == 1

    def test_sibling_gc_respected(self, tmp_path):
        a = SharedDirectoryBackend(tmp_path, sync_interval=0.0)
        b = SharedDirectoryBackend(tmp_path, sync_interval=0.0)
        a.store("k1", {"a": 1}, "network_result")
        assert b.usage()["entries"] == 1
        a.gc(max_bytes=0)
        assert b.load("k1", "network_result") is None
        assert b.usage()["entries"] == 0

    def test_sync_is_throttled(self, tmp_path):
        a = SharedDirectoryBackend(tmp_path, sync_interval=3600.0)
        b = SharedDirectoryBackend(tmp_path, sync_interval=3600.0)
        assert b.usage()["entries"] == 0  # sync clock starts now
        a.store("k1", {"a": 1}, "network_result")
        # Within the interval the stale view is allowed (and expected)...
        assert b.usage()["entries"] == 0
        # ...but direct entry reads stay coherent regardless.
        assert b.load("k1", "network_result") == {"a": 1}


class TestCacheStatsDistinctMerge:
    def test_shared_cache_merge_takes_max_gauges(self):
        total = CacheStats(disk_entries=10, disk_bytes=1000, memo_entries=5)
        total.merge(CacheStats(hits=2, disk_entries=8, disk_bytes=900, memo_entries=7))
        assert total.hits == 2
        assert total.disk_entries == 10  # same cache: max, not sum
        assert total.disk_bytes == 1000
        assert total.memo_entries == 7

    def test_distinct_cache_merge_sums_gauges(self):
        total = CacheStats(disk_entries=10, disk_bytes=1000, memo_entries=5)
        total.merge(
            CacheStats(
                hits=2,
                disk_entries=8,
                disk_bytes=900,
                memo_entries=7,
                oldest_age_seconds=50.0,
            ),
            distinct_caches=True,
        )
        assert total.disk_entries == 18  # different caches: sum
        assert total.disk_bytes == 1900
        assert total.memo_entries == 12
        # Ages never add up: the fleet's oldest entry is the oldest anywhere.
        assert total.oldest_age_seconds == 50.0

    def test_run_stats_passthrough(self):
        from repro.runtime import RunStats

        total = RunStats()
        total.cache.disk_entries = 4
        total.merge(
            {"cache": {"disk_entries": 3, "hits": 1}}, distinct_caches=True
        )
        assert total.cache.disk_entries == 7
        assert total.cache.hits == 1
