"""Unit tests for the analysis passes (Table I statistics, Fig 2/3 potential, speedups)."""

import numpy as np
import pytest

from repro.analysis.essential_bits import essential_bit_table, measure_trace
from repro.analysis.potential import count_terms_fixed16, count_terms_quant8
from repro.analysis.speedup import dadn_result, geometric_mean, speedup_summary, stripes_result
from repro.analysis.tables import format_percent, format_ratio, format_table
from repro.nn.calibration import TABLE1_TARGETS, calibrated_trace


class TestTables:
    def test_format_percent_and_ratio(self):
        assert format_percent(0.078) == "7.8%"
        assert format_ratio(2.591) == "2.59x"

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert lines[2].startswith("a ")

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_format_table_rejects_empty_headers(self):
        with pytest.raises(ValueError):
            format_table([], [])


class TestEssentialBits:
    def test_measure_trace_bounds(self, tiny_trace):
        all_fraction, nz_fraction = measure_trace(tiny_trace, samples_per_layer=2000)
        assert 0.0 < all_fraction < nz_fraction < 1.0

    def test_measure_trace_rejects_bad_sample_size(self, tiny_trace):
        with pytest.raises(ValueError):
            measure_trace(tiny_trace, samples_per_layer=0)

    def test_calibrated_alexnet_tracks_paper_nz(self):
        entries = essential_bit_table(
            representation="fixed16", networks=("alexnet",), samples_per_layer=4000
        )
        entry = entries[0]
        paper = TABLE1_TARGETS["fixed16"]["nz"]["alexnet"]
        assert entry.nonzero_fraction == pytest.approx(paper, rel=0.3)
        assert entry.paper_nonzero_fraction == paper

    def test_quant8_content_higher_than_fixed16(self):
        fixed = essential_bit_table("fixed16", networks=("vgg_m",), samples_per_layer=4000)[0]
        quant = essential_bit_table("quant8", networks=("vgg_m",), samples_per_layer=4000)[0]
        assert quant.all_fraction > fixed.all_fraction


class TestPotential:
    def test_fig2_ordering_of_engines(self):
        trace = calibrated_trace("alexnet")
        counts = count_terms_fixed16(trace, samples_per_layer=4000)
        # Pragmatic with software guidance needs the fewest terms; every engine
        # needs fewer terms than the bit-parallel baseline (ratio 1.0).
        assert counts.relative("PRA-red") <= counts.relative("PRA-fp16")
        assert counts.relative("PRA-fp16") < counts.relative("Stripes") <= 1.0
        assert counts.relative("ZN") <= counts.relative("CVN") <= 1.0

    def test_fig2_requires_fixed16_trace(self):
        trace = calibrated_trace("alexnet", representation="quant8")
        with pytest.raises(ValueError):
            count_terms_fixed16(trace)

    def test_fig3_pra_beats_zero_skipping(self):
        trace = calibrated_trace("alexnet", representation="quant8")
        counts = count_terms_quant8(trace, samples_per_layer=4000)
        assert counts.relative("PRA") < counts.relative("ZN") <= 1.0

    def test_fig3_requires_quant8_trace(self):
        with pytest.raises(ValueError):
            count_terms_quant8(calibrated_trace("alexnet"))


class TestSpeedupHelpers:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_dadn_result_has_unit_speedup(self, tiny_trace):
        result = dadn_result(tiny_trace)
        assert result.speedup == pytest.approx(1.0)
        assert result.accelerator == "DaDN"

    def test_stripes_result_speedup_matches_precision(self, tiny_trace):
        result = stripes_result(tiny_trace)
        assert result.speedup > 1.0
        assert result.accelerator == "Stripes"

    def test_stripes_result_with_width_override(self, tiny_trace):
        wide = stripes_result(tiny_trace, precision_widths=(16, 16))
        narrow = stripes_result(tiny_trace, precision_widths=(4, 4))
        assert narrow.speedup > wide.speedup

    def test_speedup_summary_geomeans_per_engine(self, tiny_trace):
        results = {"Stripes": {"tiny_net": stripes_result(tiny_trace)}}
        summary = speedup_summary(results)
        assert summary["Stripes"] == pytest.approx(results["Stripes"]["tiny_net"].speedup)
