"""Rendezvous (highest-random-weight) hashing for shard routing.

The coordinator routes every planned job to a worker by rendezvous hash of
the job's *content key* — the same fingerprint the runtime cache and the
serve coalescer already key on.  Rendezvous hashing gives the two properties
the cluster needs (``docs/cluster.md``):

* **stable shards** — a given content key prefers the same worker for as
  long as that worker lives, so repeated sweeps over one network land where
  that network's trace (and per-process memo) is already warm;
* **minimal disruption** — when a worker dies, only the keys it owned move
  (each to its next-preferred survivor); every other key keeps its shard, so
  a death never reshuffles the whole cluster's working set.

Weights are SHA-256 digests of ``key + worker id`` — deterministic across
processes and Python versions (no ``hash()`` randomization), which is what
lets a restarted coordinator route identically.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

__all__ = ["rendezvous_rank", "rendezvous_owner"]


def _weight(key: str, member: str) -> bytes:
    return hashlib.sha256(f"{key}\x00{member}".encode("utf-8")).digest()


def rendezvous_rank(key: str, members: Iterable[str]) -> list[str]:
    """Every member, most- to least-preferred for ``key``.

    The full preference order is what failover walks: if the first choice is
    dead, the job belongs to the next listed survivor, and so on.
    """
    return sorted(members, key=lambda member: _weight(key, member), reverse=True)


def rendezvous_owner(key: str, members: Sequence[str]) -> str:
    """The preferred owner of ``key`` among ``members`` (which must be non-empty)."""
    if not members:
        raise ValueError("rendezvous hashing needs at least one member")
    return max(members, key=lambda member: _weight(key, member))
