"""Unit tests for precision profiles and the trace-driven profiler."""

import numpy as np
import pytest

from repro.nn.networks import NETWORK_NAMES, get_network
from repro.nn.precision import (
    DEFAULT_SUFFIX_BITS,
    TABLE2_PRECISIONS,
    LayerPrecision,
    precision_profile,
    profile_from_values,
    table2_precisions,
)


class TestLayerPrecision:
    def test_width(self):
        assert LayerPrecision(msb=8, lsb=2).width == 7
        assert LayerPrecision(msb=0, lsb=0).width == 1

    def test_mask_keeps_only_window_bits(self):
        precision = LayerPrecision(msb=4, lsb=2)
        assert precision.mask == 0b11100

    def test_trim_zeroes_bits_outside_window(self):
        precision = LayerPrecision(msb=3, lsb=1)
        np.testing.assert_array_equal(
            precision.trim(np.array([0b10111])), [0b0110]
        )

    def test_trim_preserves_sign(self):
        precision = LayerPrecision(msb=7, lsb=0)
        np.testing.assert_array_equal(precision.trim(np.array([-5, 5])), [-5, 5])

    def test_trim_is_idempotent(self, rng):
        precision = LayerPrecision(msb=9, lsb=2)
        values = rng.integers(-(2**12), 2**12, size=100)
        once = precision.trim(values)
        np.testing.assert_array_equal(precision.trim(once), once)

    def test_trim_never_increases_magnitude(self, rng):
        precision = LayerPrecision(msb=6, lsb=3)
        values = rng.integers(0, 2**10, size=200)
        assert np.all(np.abs(precision.trim(values)) <= np.abs(values))

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            LayerPrecision(msb=1, lsb=2)
        with pytest.raises(ValueError):
            LayerPrecision(msb=3, lsb=-1)


class TestTable2:
    @pytest.mark.parametrize("name", NETWORK_NAMES)
    def test_published_profiles_match_layer_counts(self, name):
        assert len(table2_precisions(name)) == get_network(name).num_layers

    def test_alexnet_profile_values(self):
        assert TABLE2_PRECISIONS["alexnet"] == (9, 8, 5, 5, 7)

    def test_vgg19_needs_the_widest_precisions(self):
        maxima = {name: max(values) for name, values in TABLE2_PRECISIONS.items()}
        assert maxima["vgg19"] == max(maxima.values())

    def test_precision_profile_places_window_above_suffix(self):
        profile = precision_profile("alexnet", suffix_bits=2)
        assert profile[0].lsb == 2
        assert profile[0].width == 9

    def test_precision_profile_custom_widths(self):
        profile = precision_profile("alexnet", precisions=(4, 4, 4, 4, 4))
        assert all(p.width == 4 for p in profile)

    def test_precision_profile_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            precision_profile("alexnet", precisions=(4, 4))

    def test_precision_profile_rejects_negative_suffix(self):
        with pytest.raises(ValueError):
            precision_profile("alexnet", suffix_bits=-1)

    def test_default_suffix_bits_is_small(self):
        assert 0 <= DEFAULT_SUFFIX_BITS <= 4


class TestProfiler:
    def test_profile_covers_typical_values(self, rng):
        values = rng.integers(0, 2**9, size=5000)
        precision = profile_from_values(values, storage_bits=16, coverage=0.999)
        assert precision.msb >= 7

    def test_profile_of_all_zero_stream(self):
        precision = profile_from_values(np.zeros(100, dtype=int))
        assert precision.width == 1

    def test_profile_msb_bounded_by_storage(self):
        values = np.array([2**15 - 1] * 10)
        assert profile_from_values(values, storage_bits=16).msb <= 15

    def test_profile_drops_suffix_for_large_values(self):
        values = np.full(1000, 1 << 12)
        precision = profile_from_values(values, suffix_coverage=0.01)
        assert precision.lsb > 0

    def test_profile_rejects_bad_coverage(self):
        with pytest.raises(ValueError):
            profile_from_values(np.array([1]), coverage=0.0)
        with pytest.raises(ValueError):
            profile_from_values(np.array([1]), suffix_coverage=1.0)
