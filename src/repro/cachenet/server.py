"""The standalone cache server behind ``python -m repro cacheserve``.

One :class:`CacheServer` owns a directory of cache entries — stored through
the exact :class:`~repro.runtime.backends.FilesystemBackend` every local cache
uses, so the gzip entry codec, schema validation and the persistent lifecycle
manifest (TTL/size GC, usage gauges) are reused rather than reimplemented —
and serves them to remote :class:`~repro.cachenet.backend.RemoteBackend`
clients over the length-prefixed JSON frame protocol of
:mod:`repro.cachenet.protocol`.

Design points (documented in ``docs/cachenet.md``):

* **Threaded, synchronous.**  Every op is one small request/response over a
  manifest-locked backend; a thread-per-connection ``socketserver`` is the
  right tool (the asyncio machinery of the serve layer exists to multiplex
  long-running jobs, which the cache tier does not have).
* **Constant-time auth.**  With ``--auth-token`` set, a connection must send
  ``{"op": "auth", "token": ...}`` first; the comparison is
  ``hmac.compare_digest``, mirroring the serve layer's ``check_auth``.
* **Corruption is the client's miss.**  A damaged entry is dropped server-side
  (the backend's :class:`~repro.runtime.backends.CorruptEntry` recovery) and
  reported as ``{"hit": false, "corrupt": true}`` so clients can keep the
  local error accounting they already have.
* **Background TTL/size GC.**  ``--gc-max-age``/``--gc-max-bytes`` bound the
  store; a daemon thread enforces them every ``--gc-interval`` seconds via the
  manifest's LRU collector.
"""

from __future__ import annotations

import dataclasses
import hmac
import socket
import socketserver
import threading
from pathlib import Path

from repro.cachenet.protocol import FrameError, read_frame, write_frame
from repro.runtime.backends import CorruptEntry, FilesystemBackend
from repro.runtime.lifecycle import GCResult

__all__ = ["CacheServer"]

#: Ops a connection may issue before authenticating (when a token is set).
_PRE_AUTH_OPS = frozenset({"auth"})


class _Handler(socketserver.StreamRequestHandler):
    """One connection: a loop of frames dispatched to the owning server."""

    def handle(self) -> None:  # pragma: no cover - exercised over real sockets
        server: CacheServer = self.server.cache_server  # type: ignore[attr-defined]
        authenticated = server.auth_token is None
        while True:
            try:
                message = read_frame(self.rfile)
            except FrameError:
                return
            if message is None:
                return
            response, authenticated, keep_open = server.handle_message(
                message, authenticated
            )
            try:
                write_frame(self.wfile, response)
            except (OSError, FrameError):
                return
            if not keep_open:
                return


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Live connection sockets, so stop() can sever persistent clients —
        # shutdown() alone only closes the *listener*, and a RemoteBackend
        # would keep getting answers from its open handler thread.
        self._live_requests: set = set()
        self._live_lock = threading.Lock()

    def process_request(self, request, client_address) -> None:
        with self._live_lock:
            self._live_requests.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request) -> None:
        with self._live_lock:
            self._live_requests.discard(request)
        super().shutdown_request(request)

    def close_all_connections(self) -> None:
        with self._live_lock:
            live = list(self._live_requests)
        for request in live:
            try:
                request.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                request.close()
            except OSError:
                pass


class CacheServer:
    """A network-shared cache tier over one entry directory.

    ``start()`` binds and serves on a daemon thread and returns the bound
    ``(host, port)``; ``stop()`` shuts the listener and the GC thread down.
    The server is embeddable in-process (the conformance tests and the
    ``cacheserve --selftest`` run it that way) as well as standalone.
    """

    def __init__(
        self,
        directory: str | Path,
        auth_token: str | None = None,
        gc_max_bytes: int | None = None,
        gc_max_age: float | None = None,
        gc_interval: float = 60.0,
    ) -> None:
        self.backend = FilesystemBackend(directory)
        self.auth_token = auth_token
        self.gc_max_bytes = gc_max_bytes
        self.gc_max_age = gc_max_age
        self.gc_interval = gc_interval
        self._lock = threading.Lock()
        self._server: _TCPServer | None = None
        self._thread: threading.Thread | None = None
        self._gc_stop = threading.Event()
        self._gc_thread: threading.Thread | None = None
        self._stopped = threading.Event()
        # Lifetime counters, surfaced by the ``stats`` op.
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.evicted = 0

    @property
    def directory(self) -> Path:
        return self.backend.directory

    # ---------------------------------------------------------------- dispatch
    def check_auth(self, token: str | None) -> bool:
        """Constant-time token check (mirrors the serve layer's)."""
        if self.auth_token is None:
            return True
        return hmac.compare_digest(str(token or ""), self.auth_token)

    def handle_message(
        self, message: dict, authenticated: bool
    ) -> tuple[dict, bool, bool]:
        """Dispatch one frame; returns ``(response, authenticated, keep_open)``."""
        op = message.get("op")
        with self._lock:
            self.requests += 1
        if not authenticated and op not in _PRE_AUTH_OPS:
            return {"ok": False, "error": "authentication required"}, False, True
        try:
            if op == "auth":
                if self.check_auth(message.get("token")):
                    return {"ok": True, "event": "authenticated"}, True, True
                return {"ok": False, "error": "invalid token"}, False, False
            if op == "ping":
                return {"ok": True, "event": "pong"}, authenticated, True
            if op == "get":
                return self._op_get(message), authenticated, True
            if op == "probe":
                return self._op_probe(message), authenticated, True
            if op == "put":
                return self._op_put(message), authenticated, True
            if op == "touch":
                self.backend.touch(str(message.get("key")))
                return {"ok": True}, authenticated, True
            if op == "usage":
                return {"ok": True, "usage": self.backend.usage()}, authenticated, True
            if op == "gc":
                result = self._gc(message.get("max_bytes"), message.get("max_age"))
                return {"ok": True, "gc": dataclasses.asdict(result)}, authenticated, True
            if op == "clear":
                removed = self.backend.clear()
                return {"ok": True, "removed": removed}, authenticated, True
            if op == "stats":
                return {"ok": True, "stats": self.stats()}, authenticated, True
            if op == "shutdown":
                threading.Thread(target=self.stop, daemon=True).start()
                return {"ok": True, "event": "shutting-down"}, authenticated, False
        except OSError as error:
            return {"ok": False, "error": str(error)}, authenticated, True
        return {"ok": False, "error": f"unknown op: {op!r}"}, authenticated, True

    def _op_get(self, message: dict) -> dict:
        key, kind = str(message.get("key")), str(message.get("kind"))
        try:
            payload = self.backend.load(key, kind)
        except CorruptEntry:
            with self._lock:
                self.corrupt += 1
            return {"ok": True, "hit": False, "corrupt": True}
        with self._lock:
            if payload is None:
                self.misses += 1
            else:
                self.hits += 1
        if payload is None:
            return {"ok": True, "hit": False}
        return {"ok": True, "hit": True, "payload": payload}

    def _op_probe(self, message: dict) -> dict:
        key, kind = str(message.get("key")), str(message.get("kind"))
        try:
            hit = self.backend.probe(key, kind)
        except CorruptEntry:
            with self._lock:
                self.corrupt += 1
            return {"ok": True, "hit": False, "corrupt": True}
        return {"ok": True, "hit": hit}

    def _op_put(self, message: dict) -> dict:
        key, kind = str(message.get("key")), str(message.get("kind"))
        payload = message.get("payload")
        if not isinstance(payload, dict):
            return {"ok": False, "error": "payload must be a JSON object"}
        self.backend.store(key, payload, kind)
        with self._lock:
            self.stores += 1
        return {"ok": True, "stored": True}

    # --------------------------------------------------------------- lifecycle
    def _gc(self, max_bytes: int | None, max_age: float | None) -> GCResult:
        result = self.backend.gc(max_bytes=max_bytes, max_age=max_age)
        with self._lock:
            self.evicted += result.removed_entries
        return result

    def _gc_loop(self) -> None:
        while not self._gc_stop.wait(self.gc_interval):
            self._gc(self.gc_max_bytes, self.gc_max_age)

    def stats(self) -> dict:
        """Lifetime op counters plus the manifest-backed usage gauges."""
        with self._lock:
            counters = {
                "requests": self.requests,
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "corrupt": self.corrupt,
                "evicted": self.evicted,
            }
        counters["usage"] = self.backend.usage()
        return counters

    def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind, serve on a daemon thread, return the bound ``(host, port)``."""
        self._server = _TCPServer((host, port), _Handler)
        self._server.cache_server = self  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="cacheserve", daemon=True
        )
        self._thread.start()
        if self.gc_max_bytes is not None or self.gc_max_age is not None:
            self._gc_thread = threading.Thread(
                target=self._gc_loop, name="cacheserve-gc", daemon=True
            )
            self._gc_thread.start()
        return self._server.server_address[:2]

    def stop(self) -> None:
        """Stop serving; safe to call more than once."""
        self._gc_stop.set()
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
            server.close_all_connections()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._stopped.set()

    def wait_stopped(self, timeout: float | None = None) -> bool:
        """Block until :meth:`stop` ran (a client shutdown op counts)."""
        return self._stopped.wait(timeout)
